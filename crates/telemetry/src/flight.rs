//! A bounded ring of structured records for failed verifications.
//!
//! Aggregate counters say *how many* verifications failed; a production
//! incident needs to know *what happened* in the last few. The flight
//! recorder keeps one [`VerifyFlight`] per rejected, degraded, or
//! retries-exhausted verification — distance, policy decisions, reject
//! labels, and an open-ended JSON `detail` payload (quality report, span
//! tree) that the telemetry crate never has to interpret, so the core
//! crate can attach its own types without a dependency cycle.

use std::collections::VecDeque;

use mandipass_util::json::Value;

/// Why a verification earned a flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// A probe was rejected (verify miss, quality gate, or pipeline
    /// failure).
    Rejected,
    /// The decision was made in degraded accelerometer-only mode.
    Degraded,
    /// Every probe a policy considered was rejected.
    Exhausted,
    /// The serving layer's circuit breaker changed state (the `detail`
    /// payload carries the `from`/`to` states and the reason).
    Breaker,
}

impl FlightOutcome {
    /// Stable lower-case label for reports and exposition.
    pub fn label(self) -> &'static str {
        match self {
            FlightOutcome::Rejected => "rejected",
            FlightOutcome::Degraded => "degraded",
            FlightOutcome::Exhausted => "exhausted",
            FlightOutcome::Breaker => "breaker",
        }
    }
}

/// One recorded failed/degraded verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyFlight {
    /// Monotonic per-recorder sequence number (assigned on record, never
    /// reused after eviction).
    pub seq: u64,
    /// Timestamp of the record ([`crate::clock::now`] units).
    pub timestamp: u64,
    /// The user the verification targeted.
    pub user_id: u32,
    /// Why this flight was recorded.
    pub outcome: FlightOutcome,
    /// Cosine distance of the decision, when a comparison happened.
    pub distance: Option<f64>,
    /// The threshold the decision was made against, when one applied.
    pub threshold: Option<f64>,
    /// Probes consumed by the policy (1 for single-probe verifies).
    pub attempts: usize,
    /// Reject labels accumulated before the decision
    /// (`quality:dead_axis`, `pipeline:dsp`, …).
    pub rejects: Vec<String>,
    /// Structured payload the producer attached (quality report, span
    /// tree); [`Value::Null`] when none.
    pub detail: Value,
    /// The request trace this flight belongs to, when the verification
    /// ran inside a traced serve request (see [`crate::trace`]).
    pub trace_id: Option<u64>,
}

impl VerifyFlight {
    /// A record with everything but the identity fields defaulted;
    /// producers fill what they know, [`FlightRecorder::record`] assigns
    /// `seq` and `timestamp`.
    pub fn new(user_id: u32, outcome: FlightOutcome) -> Self {
        VerifyFlight {
            seq: 0,
            timestamp: 0,
            user_id,
            outcome,
            distance: None,
            threshold: None,
            attempts: 1,
            rejects: Vec::new(),
            detail: Value::Null,
            trace_id: None,
        }
    }

    /// Serialises the record.
    pub fn to_json(&self) -> Value {
        let opt = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => Value::Number(x),
            _ => Value::Null,
        };
        Value::Object(vec![
            ("seq".to_string(), Value::Number(self.seq as f64)),
            (
                "timestamp".to_string(),
                Value::Number(self.timestamp as f64),
            ),
            (
                "user_id".to_string(),
                Value::Number(f64::from(self.user_id)),
            ),
            (
                "outcome".to_string(),
                Value::String(self.outcome.label().to_string()),
            ),
            ("distance".to_string(), opt(self.distance)),
            ("threshold".to_string(), opt(self.threshold)),
            ("attempts".to_string(), Value::Number(self.attempts as f64)),
            (
                "rejects".to_string(),
                Value::Array(
                    self.rejects
                        .iter()
                        .map(|r| Value::String(r.clone()))
                        .collect(),
                ),
            ),
            ("detail".to_string(), self.detail.clone()),
            (
                "trace_id".to_string(),
                self.trace_id.map_or(Value::Null, |id| {
                    Value::String(crate::trace::format_trace_id(id))
                }),
            ),
        ])
    }
}

/// The bounded ring of [`VerifyFlight`] records, oldest evicted first.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<VerifyFlight>,
    capacity: usize,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
        }
    }

    /// Records one flight at time `now`, assigning its sequence number.
    pub fn record_at(&mut self, now: u64, mut flight: VerifyFlight) {
        flight.seq = self.next_seq;
        flight.timestamp = now;
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(flight);
    }

    /// The retained records, oldest first.
    pub fn flights(&self) -> Vec<VerifyFlight> {
        self.ring.iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total flights ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Serialises the retained records, oldest first.
    pub fn to_json(&self) -> Value {
        Value::Array(self.ring.iter().map(VerifyFlight::to_json).collect())
    }

    /// Forgets the retained records (the sequence counter survives, like
    /// the enclave audit ring's).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_assigns_seq_and_timestamp() {
        let mut r = FlightRecorder::new(8);
        r.record_at(5, VerifyFlight::new(7, FlightOutcome::Rejected));
        r.record_at(6, VerifyFlight::new(7, FlightOutcome::Exhausted));
        let flights = r.flights();
        assert_eq!(flights.len(), 2);
        assert_eq!(flights[0].seq, 0);
        assert_eq!(flights[0].timestamp, 5);
        assert_eq!(flights[1].seq, 1);
        assert_eq!(r.total_recorded(), 2);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5u64 {
            r.record_at(i, VerifyFlight::new(1, FlightOutcome::Rejected));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.capacity(), 2);
        let seqs: Vec<u64> = r.flights().iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record_at(1, VerifyFlight::new(1, FlightOutcome::Degraded));
        r.record_at(2, VerifyFlight::new(2, FlightOutcome::Degraded));
        assert_eq!(r.len(), 1);
        assert_eq!(r.flights()[0].user_id, 2);
    }

    #[test]
    fn flight_serialises_all_fields() {
        let mut flight = VerifyFlight::new(3, FlightOutcome::Exhausted);
        flight.distance = Some(0.71);
        flight.threshold = Some(0.5485);
        flight.attempts = 3;
        flight.rejects = vec!["quality:dead_axis".to_string()];
        flight.detail = Value::Object(vec![("energy_std".to_string(), Value::Number(12.0))]);
        flight.trace_id = Some(0xfeed);
        let mut r = FlightRecorder::new(4);
        r.record_at(9, flight);
        let json = r.to_json().to_json();
        assert!(json.contains("\"outcome\":\"exhausted\""));
        assert!(json.contains("\"trace_id\":\"000000000000feed\""));
        assert!(json.contains("\"distance\":0.71"));
        assert!(json.contains("\"rejects\":[\"quality:dead_axis\"]"));
        assert!(json.contains("\"energy_std\":12"));
        assert!(json.contains("\"timestamp\":9"));
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(FlightOutcome::Rejected.label(), "rejected");
        assert_eq!(FlightOutcome::Degraded.label(), "degraded");
        assert_eq!(FlightOutcome::Exhausted.label(), "exhausted");
        assert_eq!(FlightOutcome::Breaker.label(), "breaker");
    }

    #[test]
    fn clear_keeps_total() {
        let mut r = FlightRecorder::new(4);
        r.record_at(1, VerifyFlight::new(1, FlightOutcome::Rejected));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 1);
        r.record_at(2, VerifyFlight::new(1, FlightOutcome::Rejected));
        assert_eq!(r.flights()[0].seq, 1);
    }
}
