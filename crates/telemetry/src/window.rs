//! Sliding-window aggregation over a fixed ring of time slots.
//!
//! The cumulative metrics in [`crate::metrics`] answer "what has this
//! process done since it started"; live health monitoring needs "what is
//! happening *right now*". [`WindowedCounter`] and [`WindowedHistogram`]
//! divide the last `window` of time into a fixed number of slots, each
//! tagged with the epoch it was last written in; a slot whose epoch has
//! rotated out of the window is cleared lazily on the next touch, so the
//! structures are O(slots) in memory with no background thread.
//!
//! Timestamps are explicit (`*_at(now_ns, ..)`), taken from
//! [`crate::clock::now`] by the monitor layer. Under the deterministic
//! logical clock every tick lands in epoch 0, which collapses the window
//! to "everything observed" — rates lose meaning but ratios and
//! distributions (what the drift detector consumes) stay exact and
//! bit-stable, which is what the offline CI gate needs.

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// One slot of a windowed aggregate: the epoch it belongs to plus its
/// payload.
#[derive(Debug, Clone, Default)]
struct CounterSlot {
    epoch: u64,
    count: u64,
}

/// A counter over the trailing time window.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    slot_ns: u64,
    slots: Vec<CounterSlot>,
}

impl WindowedCounter {
    /// A counter covering `window_secs` seconds split into `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics when `window_secs` or `slots` is zero.
    pub fn new(window_secs: u64, slots: usize) -> Self {
        assert!(window_secs > 0, "window must cover at least one second");
        assert!(slots > 0, "window needs at least one slot");
        let slot_ns = (window_secs * NANOS_PER_SEC / slots as u64).max(1);
        WindowedCounter {
            slot_ns,
            slots: vec![CounterSlot::default(); slots],
        }
    }

    /// The window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slot_ns * self.slots.len() as u64
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Adds `n` at time `now_ns`.
    pub fn add_at(&mut self, now_ns: u64, n: u64) {
        let epoch = self.epoch(now_ns);
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.count = 0;
        }
        slot.count += n;
    }

    /// Adds one at time `now_ns`.
    pub fn inc_at(&mut self, now_ns: u64) {
        self.add_at(now_ns, 1);
    }

    /// Total count over the window ending at `now_ns`.
    pub fn total_at(&self, now_ns: u64) -> u64 {
        let newest = self.epoch(now_ns);
        let oldest = newest.saturating_sub(self.slots.len() as u64 - 1);
        self.slots
            .iter()
            .filter(|s| s.epoch >= oldest && s.epoch <= newest)
            .map(|s| s.count)
            .sum()
    }

    /// Events per second over the window ending at `now_ns`.
    pub fn rate_per_sec_at(&self, now_ns: u64) -> f64 {
        self.total_at(now_ns) as f64 * NANOS_PER_SEC as f64 / self.window_ns() as f64
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = CounterSlot::default();
        }
    }
}

#[derive(Debug, Clone)]
struct HistogramSlot {
    epoch: u64,
    /// One count per bound plus the implicit overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl HistogramSlot {
    fn empty(buckets: usize) -> Self {
        HistogramSlot {
            epoch: 0,
            buckets: vec![0; buckets],
            count: 0,
            sum: 0.0,
        }
    }

    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
    }
}

/// A fixed-bucket histogram over the trailing time window, sharing the
/// bucketing convention of [`crate::metrics::Histogram`] (inclusive
/// upper bounds, implicit overflow bucket last).
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    bounds: Vec<f64>,
    slot_ns: u64,
    slots: Vec<HistogramSlot>,
}

impl WindowedHistogram {
    /// A histogram covering `window_secs` seconds in `slots` slots with
    /// the given ascending bucket `bounds`.
    ///
    /// # Panics
    ///
    /// Panics when `window_secs` or `slots` is zero, or when `bounds` is
    /// empty, non-finite, or not strictly ascending.
    pub fn new(window_secs: u64, slots: usize, bounds: Vec<f64>) -> Self {
        assert!(window_secs > 0, "window must cover at least one second");
        assert!(slots > 0, "window needs at least one slot");
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        let slot_ns = (window_secs * NANOS_PER_SEC / slots as u64).max(1);
        let buckets = bounds.len() + 1;
        WindowedHistogram {
            bounds,
            slot_ns,
            slots: vec![HistogramSlot::empty(buckets); slots],
        }
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Records one observation at time `now_ns` (non-finite values are
    /// dropped).
    pub fn observe_at(&mut self, now_ns: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let epoch = self.epoch(now_ns);
        let idx = (epoch % self.slots.len() as u64) as usize;
        let n_buckets = self.bounds.len() + 1;
        let bucket = self
            .bounds
            .partition_point(|&bound| bound < value)
            .min(n_buckets - 1);
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            slot.reset(epoch);
        }
        slot.buckets[bucket] += 1;
        slot.count += 1;
        slot.sum += value;
    }

    fn live_slots(&self, now_ns: u64) -> impl Iterator<Item = &HistogramSlot> {
        let newest = self.epoch(now_ns);
        let oldest = newest.saturating_sub(self.slots.len() as u64 - 1);
        self.slots
            .iter()
            .filter(move |s| s.epoch >= oldest && s.epoch <= newest)
    }

    /// Number of observations in the window ending at `now_ns`.
    pub fn count_at(&self, now_ns: u64) -> u64 {
        self.live_slots(now_ns).map(|s| s.count).sum()
    }

    /// Sum of observations in the window ending at `now_ns`.
    pub fn sum_at(&self, now_ns: u64) -> f64 {
        self.live_slots(now_ns).map(|s| s.sum).sum()
    }

    /// Mean observation in the window (`NaN` when empty).
    pub fn mean_at(&self, now_ns: u64) -> f64 {
        let count = self.count_at(now_ns);
        if count == 0 {
            f64::NAN
        } else {
            self.sum_at(now_ns) / count as f64
        }
    }

    /// Per-bucket counts over the window, overflow bucket last.
    pub fn bucket_counts_at(&self, now_ns: u64) -> Vec<u64> {
        let mut totals = vec![0u64; self.bounds.len() + 1];
        for slot in self.live_slots(now_ns) {
            for (t, b) in totals.iter_mut().zip(&slot.buckets) {
                *t += b;
            }
        }
        totals
    }

    /// The window's probability mass function: per-bucket fraction of
    /// observations, overflow bucket last. All zeros when empty.
    pub fn pmf_at(&self, now_ns: u64) -> Vec<f64> {
        let counts = self.bucket_counts_at(now_ns);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; counts.len()];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// The `q`-quantile over the window, linearly interpolated inside
    /// the containing bucket (`NaN` when empty). The overflow bucket has
    /// no upper bound, so mass landing there reports the last bound.
    pub fn quantile_at(&self, now_ns: u64, q: f64) -> f64 {
        let counts = self.bucket_counts_at(now_ns);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        let last = self.bounds[self.bounds.len() - 1];
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cumulative + count;
            if (next as f64) >= target {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    return last;
                };
                let into = ((target - cumulative as f64) / count as f64).clamp(0.0, 1.0);
                return lower + into * (upper - lower);
            }
            cumulative = next;
        }
        last
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.reset(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = NANOS_PER_SEC;

    #[test]
    fn counter_totals_within_window() {
        let mut c = WindowedCounter::new(10, 10); // 1 s slots
        c.add_at(SEC, 3);
        c.inc_at(2 * SEC);
        assert_eq!(c.total_at(2 * SEC), 4);
        assert!((c.rate_per_sec_at(2 * SEC) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn counter_expires_old_slots() {
        let mut c = WindowedCounter::new(10, 10);
        c.add_at(SEC, 5);
        // 1 s slot, 10 slots: by t=11s the write at t=1s has rotated out.
        assert_eq!(c.total_at(10 * SEC), 5);
        assert_eq!(c.total_at(11 * SEC), 0);
    }

    #[test]
    fn counter_slot_reuse_clears_stale_content() {
        let mut c = WindowedCounter::new(2, 2); // 1 s slots, 2 of them
        c.add_at(0, 7); // slot 0, epoch 0
        c.add_at(2 * SEC, 1); // slot 0 again, epoch 2: must reset first
        assert_eq!(c.total_at(2 * SEC), 1);
    }

    #[test]
    fn counter_is_deterministic_under_logical_ticks() {
        // Logical ticks 1, 2, 3… all land in epoch 0: the window
        // degenerates to a running total, bit-stably.
        let mut a = WindowedCounter::new(60, 12);
        let mut b = WindowedCounter::new(60, 12);
        for t in 1..=50u64 {
            a.inc_at(t);
            b.inc_at(t);
        }
        assert_eq!(a.total_at(50), b.total_at(50));
        assert_eq!(a.total_at(50), 50);
    }

    #[test]
    fn counter_clear_forgets() {
        let mut c = WindowedCounter::new(10, 5);
        c.add_at(SEC, 9);
        c.clear();
        assert_eq!(c.total_at(SEC), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_are_rejected() {
        let _ = WindowedCounter::new(10, 0);
    }

    #[test]
    fn histogram_counts_and_means_within_window() {
        let mut h = WindowedHistogram::new(10, 10, vec![1.0, 2.0]);
        h.observe_at(SEC, 0.5);
        h.observe_at(SEC, 1.5);
        h.observe_at(2 * SEC, 5.0);
        assert_eq!(h.count_at(2 * SEC), 3);
        assert!((h.sum_at(2 * SEC) - 7.0).abs() < 1e-12);
        assert!((h.mean_at(2 * SEC) - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.bucket_counts_at(2 * SEC), vec![1, 1, 1]);
    }

    #[test]
    fn histogram_expires_old_observations() {
        let mut h = WindowedHistogram::new(4, 4, vec![1.0]);
        h.observe_at(0, 0.5);
        assert_eq!(h.count_at(3 * SEC), 1);
        assert_eq!(h.count_at(4 * SEC), 0);
        assert!(h.mean_at(4 * SEC).is_nan());
    }

    #[test]
    fn histogram_pmf_normalises() {
        let mut h = WindowedHistogram::new(10, 5, vec![1.0, 2.0]);
        for v in [0.5, 0.6, 1.5, 9.0] {
            h.observe_at(SEC, v);
        }
        let pmf = h.pmf_at(SEC);
        assert_eq!(pmf.len(), 3);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pmf[0] - 0.5).abs() < 1e-12);
        assert!((pmf[2] - 0.25).abs() < 1e-12);
        // Empty window: all-zero pmf, same length.
        assert_eq!(h.pmf_at(u64::MAX), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = WindowedHistogram::new(10, 5, vec![10.0, 20.0, 30.0]);
        for i in 1..=100 {
            h.observe_at(SEC, 0.3 * f64::from(i));
        }
        let p50 = h.quantile_at(SEC, 0.5);
        assert!((13.0..=17.0).contains(&p50), "p50 {p50}");
        // Overflow mass reports the last bound.
        h.observe_at(SEC, 1e6);
        assert_eq!(h.quantile_at(SEC, 1.0), 30.0);
        assert!(h.quantile_at(2 * SEC + 10 * SEC, 0.5).is_nan());
    }

    #[test]
    fn histogram_drops_non_finite() {
        let mut h = WindowedHistogram::new(10, 5, vec![1.0]);
        h.observe_at(SEC, f64::NAN);
        h.observe_at(SEC, f64::INFINITY);
        assert_eq!(h.count_at(SEC), 0);
    }

    #[test]
    fn histogram_clear_forgets_even_at_epoch_zero() {
        let mut h = WindowedHistogram::new(60, 12, vec![1.0]);
        h.observe_at(1, 0.5); // logical tick: epoch 0
        h.clear();
        assert_eq!(h.count_at(2), 0);
        h.observe_at(3, 0.5);
        assert_eq!(h.count_at(3), 1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = WindowedHistogram::new(10, 5, vec![2.0, 1.0]);
    }
}
