//! A global registry of atomic counters, gauges, and fixed-bucket
//! histograms with quantile readout.
//!
//! Handles are `Arc`-backed and cheap to clone; the [`crate::counter!`]
//! family of macros caches a handle per call site, so hot-path updates
//! are lock-free atomic operations. Name lookup (registration) takes a
//! registry mutex and is meant for set-up paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mandipass_util::json::Value;

/// A monotonically increasing `u64`.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` atomically (negative deltas decrement) — the
    /// up/down shape a live connection or queue-depth gauge needs,
    /// which last-write-wins [`Gauge::set`] would lose under
    /// concurrent workers.
    pub fn add(&self, delta: f64) {
        atomic_f64_update(&self.0, delta, |current, d| current + d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

fn atomic_f64_update(cell: &AtomicU64, value: f64, keep: impl Fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = keep(f64::from_bits(current), value).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending bucket upper bounds; an implicit overflow bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: Vec<f64>) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    /// The default latency buckets: a 1-2-5 ladder from 100 ns to 50 s,
    /// in seconds.
    pub fn default_latency_bounds() -> Vec<f64> {
        let mut bounds = Vec::new();
        for exp in -7..=1 {
            for mantissa in [1.0, 2.0, 5.0] {
                bounds.push(mantissa * 10f64.powi(exp));
            }
        }
        bounds
    }

    /// Records one observation (non-finite values are dropped).
    pub fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let inner = &self.0;
        let idx = inner
            .bounds
            .partition_point(|&bound| bound < value)
            .min(inner.buckets.len() - 1);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&inner.sum_bits, value, |acc, v| acc + v);
        atomic_f64_update(&inner.min_bits, value, f64::min);
        atomic_f64_update(&inner.max_bits, value, f64::max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            f64::NAN
        } else {
            self.sum() / count as f64
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.0.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
        }
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated by linear interpolation
    /// inside the containing bucket, clamped to the observed min/max.
    /// `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cumulative + count;
            if (next as f64) >= target {
                let lower = if i == 0 { 0.0 } else { self.0.bounds[i - 1] };
                let upper = if i < self.0.bounds.len() {
                    self.0.bounds[i]
                } else {
                    // Overflow bucket: no finite upper bound, so
                    // interpolate towards the largest observation (which
                    // may sit below `lower` when every sample landed in
                    // overflow — keep the span non-negative).
                    self.max().max(lower)
                };
                let into = (target - cumulative as f64) / count as f64;
                let estimate = lower + into.clamp(0.0, 1.0) * (upper - lower);
                return estimate.clamp(self.min(), self.max());
            }
            cumulative = next;
        }
        self.max()
    }

    /// Serialises count/sum/mean/min/max and the p50/p90/p99 estimates.
    pub fn to_json(&self) -> Value {
        let num = |v: f64| {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        };
        Value::Object(vec![
            ("count".to_string(), Value::Number(self.count() as f64)),
            ("sum".to_string(), num(self.sum())),
            ("mean".to_string(), num(self.mean())),
            ("min".to_string(), num(self.min())),
            ("max".to_string(), num(self.max())),
            ("p50".to_string(), num(self.quantile(0.5))),
            ("p90".to_string(), num(self.quantile(0.9))),
            ("p99".to_string(), num(self.quantile(0.99))),
        ])
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A namespace of metrics. Most code uses the process-wide [`global`]
/// registry; tests can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name` with the default latency buckets,
    /// created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, Histogram::default_latency_bounds())
    }

    /// The histogram named `name`; `bounds` (ascending upper bounds)
    /// apply only on first creation.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn histogram_with_bounds(&self, name: &str, bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Serialises every metric:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn snapshot_json(&self) -> Value {
        let inner = self.lock();
        let counters = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(v.get() as f64)))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(v.get())))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.inc();
        c.add(4);
        // Same name → same underlying cell.
        assert_eq!(reg.counter("requests").get(), 5);
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = Registry::new();
        let g = reg.gauge("loss");
        g.set(0.25);
        g.set(0.125);
        assert_eq!(reg.gauge("loss").get(), 0.125);
    }

    #[test]
    fn gauge_add_is_atomic_under_contention() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                        g.add(-1.0);
                    }
                    g.add(2.5);
                });
            }
        });
        assert_eq!(g.get(), 10.0);
    }

    #[test]
    fn histogram_buckets_observations_correctly() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("lat", vec![1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 9.0] {
            h.observe(v);
        }
        // Bucket upper bounds are inclusive: v ≤ bound.
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 0, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 15.6).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.0);
        assert!((h.mean() - 3.12).abs() < 1e-12);
    }

    #[test]
    fn histogram_boundary_value_lands_in_its_bucket() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("edge", vec![1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 0]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("q", vec![10.0, 20.0, 30.0]);
        // 100 observations uniform over (0, 30]: ~p50 near 15.
        for i in 1..=100 {
            h.observe(0.3 * f64::from(i));
        }
        let p50 = h.quantile(0.5);
        assert!((13.0..=17.0).contains(&p50), "p50 {p50}");
        let p90 = h.quantile(0.9);
        assert!((25.0..=30.0).contains(&p90), "p90 {p90}");
        // Quantiles are clamped to observations.
        assert!(h.quantile(0.0) >= h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantile_of_overflow_bucket_interpolates_to_max() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("of", vec![1.0]);
        h.observe(100.0);
        h.observe(250.0);
        // All mass in the implicit overflow bucket: estimates stay
        // inside the observed range instead of collapsing to max.
        assert_eq!(h.quantile(1.0), 250.0);
        assert_eq!(h.quantile(0.0), 100.0);
        let mid = h.quantile(0.5);
        assert!(
            (100.0..250.0).contains(&mid),
            "p50 {mid} must interpolate inside [min, max)"
        );
        assert!(h.quantile(0.99) < 250.0);
        assert!(h.quantile(0.99) > h.quantile(0.5));
    }

    #[test]
    fn quantile_of_single_observation_is_that_value() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("single", vec![1.0, 10.0]);
        h.observe(3.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.5, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_clamp_to_observed_range() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("extremes", vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 3.9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.quantile(1.0), 3.9);
        // Out-of-range q is clamped, not extrapolated.
        assert_eq!(h.quantile(-3.0), 0.5);
        assert_eq!(h.quantile(7.0), 3.9);
    }

    #[test]
    fn quantile_of_single_overflow_observation_is_that_value() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("of1", vec![1.0]);
        h.observe(42.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 42.0, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_nan() {
        let reg = Registry::new();
        let h = reg.histogram("empty");
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
        assert!(h.min().is_nan() && h.max().is_nan());
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let reg = Registry::new();
        let h = reg.histogram("nf");
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_are_rejected() {
        Registry::new().histogram_with_bounds("bad", vec![2.0, 1.0]);
    }

    #[test]
    fn snapshot_serialises_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(2);
        reg.gauge("g").set(1.5);
        reg.histogram_with_bounds("h", vec![1.0]).observe(0.5);
        let json = reg.snapshot_json().to_json();
        assert!(json.contains("\"c\":2"));
        assert!(json.contains("\"g\":1.5"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn default_latency_bounds_are_ascending() {
        let bounds = Histogram::default_latency_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.len(), 27);
    }
}
