//! Score-drift detection against a frozen enrolment-time baseline.
//!
//! The paper's operating point (genuine cosine distance ≈ 0.4884,
//! impostor ≈ 0.7032, threshold 0.5485) is fixed at enrolment time, but
//! the earable literature documents biometric drift across re-wearing
//! sessions and days. [`DriftDetector`] keeps a sliding-window histogram
//! of observed verification distances plus windowed decision counters,
//! compares the live distance distribution against a frozen baseline via
//! the population stability index ([`psi`]) and the Kolmogorov–Smirnov
//! statistic ([`ks_statistic`]), and folds four signals — distance
//! drift, reject-rate spike, degraded-mode ratio, and an FRR proxy —
//! into one typed [`HealthStatus`].

use mandipass_util::json::Value;

use crate::window::{WindowedCounter, WindowedHistogram};

/// Population stability index between two probability mass functions of
/// equal length: `Σ (q − p) · ln(q / p)` with add-α smoothing, so empty
/// buckets never yield infinities and finite-sample windows are not
/// punished for a single stray bucket. Matching distributions score
/// ≈ 0; a fully displaced distribution scores well above 2.
pub fn psi(expected: &[f64], observed: &[f64]) -> f64 {
    const ALPHA: f64 = 0.01;
    assert_eq!(
        expected.len(),
        observed.len(),
        "psi needs equal-length pmfs"
    );
    let norm = 1.0 + ALPHA * expected.len() as f64;
    expected
        .iter()
        .zip(observed)
        .map(|(&p, &q)| {
            let p = (p + ALPHA) / norm;
            let q = (q + ALPHA) / norm;
            (q - p) * (q / p).ln()
        })
        .sum()
}

/// Kolmogorov–Smirnov statistic between two probability mass functions
/// of equal length: the maximum absolute difference of their CDFs, in
/// `0.0..=1.0`.
pub fn ks_statistic(expected: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(expected.len(), observed.len(), "ks needs equal-length pmfs");
    let mut cdf_p = 0.0;
    let mut cdf_q = 0.0;
    let mut worst = 0.0f64;
    for (&p, &q) in expected.iter().zip(observed) {
        cdf_p += p;
        cdf_q += q;
        worst = worst.max((cdf_p - cdf_q).abs());
    }
    worst
}

/// Overall system health, worst signal wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Every signal within its normal band.
    Healthy,
    /// At least one signal past its warning threshold.
    Degrading,
    /// At least one signal past its alarm threshold.
    Alarm,
}

impl HealthStatus {
    /// Stable lower-case label for reports and exposition.
    pub fn label(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degrading => "degrading",
            HealthStatus::Alarm => "alarm",
        }
    }
}

/// The monitored signal behind one [`SignalReading`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// PSI between the frozen baseline distance pmf and the windowed
    /// observed distance pmf.
    DistanceDrift,
    /// Fraction of windowed attempts rejected (verify misses plus
    /// quality-gate rejections).
    RejectRateSpike,
    /// Fraction of windowed decisions made in degraded accel-only mode.
    DegradedRatio,
    /// Fraction of windowed *decisions* that rejected — a false-reject
    /// proxy under the assumption that live traffic is mostly genuine.
    FrrProxy,
}

impl HealthSignal {
    /// Stable snake-case label for reports and exposition.
    pub fn label(self) -> &'static str {
        match self {
            HealthSignal::DistanceDrift => "distance_drift",
            HealthSignal::RejectRateSpike => "reject_rate_spike",
            HealthSignal::DegradedRatio => "degraded_ratio",
            HealthSignal::FrrProxy => "frr_proxy",
        }
    }
}

/// One signal's current value against its thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalReading {
    /// Which signal this is.
    pub signal: HealthSignal,
    /// Current value (PSI for drift, a ratio for the others).
    pub value: f64,
    /// Warning threshold ([`HealthStatus::Degrading`] at or above).
    pub warn: f64,
    /// Alarm threshold ([`HealthStatus::Alarm`] at or above).
    pub alarm: f64,
    /// This signal's own status.
    pub status: HealthStatus,
}

impl SignalReading {
    fn judge(signal: HealthSignal, value: f64, warn: f64, alarm: f64) -> Self {
        let status = if value >= alarm {
            HealthStatus::Alarm
        } else if value >= warn {
            HealthStatus::Degrading
        } else {
            HealthStatus::Healthy
        };
        SignalReading {
            signal,
            value,
            warn,
            alarm,
            status,
        }
    }

    /// Serialises the reading.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "signal".to_string(),
                Value::String(self.signal.label().to_string()),
            ),
            (
                "value".to_string(),
                if self.value.is_finite() {
                    Value::Number(self.value)
                } else {
                    Value::Null
                },
            ),
            ("warn".to_string(), Value::Number(self.warn)),
            ("alarm".to_string(), Value::Number(self.alarm)),
            (
                "status".to_string(),
                Value::String(self.status.label().to_string()),
            ),
        ])
    }
}

/// The detector's folded verdict plus its per-signal evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Worst signal status (Healthy when below `min_decisions`).
    pub status: HealthStatus,
    /// One reading per monitored signal.
    pub signals: Vec<SignalReading>,
    /// Windowed decision count the verdict is based on.
    pub decisions: u64,
    /// Whether enough windowed traffic existed to judge at all.
    pub sufficient: bool,
}

impl HealthReport {
    /// The signals at or past their warning threshold, worst first.
    pub fn reasons(&self) -> Vec<&SignalReading> {
        let mut flagged: Vec<&SignalReading> = self
            .signals
            .iter()
            .filter(|s| s.status != HealthStatus::Healthy)
            .collect();
        flagged.sort_by_key(|s| std::cmp::Reverse(s.status));
        flagged
    }

    /// Serialises the report.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "status".to_string(),
                Value::String(self.status.label().to_string()),
            ),
            (
                "decisions".to_string(),
                Value::Number(self.decisions as f64),
            ),
            ("sufficient".to_string(), Value::Bool(self.sufficient)),
            (
                "signals".to_string(),
                Value::Array(self.signals.iter().map(SignalReading::to_json).collect()),
            ),
        ])
    }
}

/// Thresholds and window geometry for [`DriftDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Number of ring slots in each window.
    pub slots: usize,
    /// Minimum windowed attempts before any signal may leave `Healthy`.
    pub min_decisions: u64,
    /// PSI warning threshold (moderate distribution shift).
    pub psi_warn: f64,
    /// PSI alarm threshold (major distribution shift).
    pub psi_alarm: f64,
    /// Reject-rate warning threshold.
    pub reject_warn: f64,
    /// Reject-rate alarm threshold.
    pub reject_alarm: f64,
    /// Degraded-mode ratio warning threshold.
    pub degraded_warn: f64,
    /// Degraded-mode ratio alarm threshold.
    pub degraded_alarm: f64,
    /// FRR-proxy warning threshold.
    pub frr_warn: f64,
    /// FRR-proxy alarm threshold.
    pub frr_alarm: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window_secs: 60,
            slots: 12,
            min_decisions: 8,
            psi_warn: 0.5,
            psi_alarm: 2.0,
            reject_warn: 0.25,
            reject_alarm: 0.6,
            degraded_warn: 0.25,
            degraded_alarm: 0.6,
            frr_warn: 0.25,
            frr_alarm: 0.6,
        }
    }
}

/// Bucket upper bounds shared by the baseline and the live distance
/// histogram: cosine distance lives in `[0, 2]`; 16 bins of width 0.1
/// cover `[0, 1.6)` with the overflow bucket taking the tail.
pub fn distance_bounds() -> Vec<f64> {
    (1..=16).map(|i| f64::from(i) * 0.1).collect()
}

/// Synthesises a baseline pmf from a Gaussian `(mean, std)` over the
/// [`distance_bounds`] grid — used for the paper-operating-point default
/// baseline when no enrolment-time distances are available.
fn gaussian_pmf(mean: f64, std: f64, bounds: &[f64]) -> Vec<f64> {
    // Φ via erf-free logistic approximation is overkill here: integrate
    // the density numerically per bucket (the grid is coarse).
    let density = |x: f64| {
        let z = (x - mean) / std;
        (-0.5 * z * z).exp()
    };
    let mut pmf = Vec::with_capacity(bounds.len() + 1);
    let mut lower = 0.0;
    for &upper in bounds {
        let steps = 16;
        let h = (upper - lower) / steps as f64;
        let mass: f64 = (0..steps)
            .map(|i| density(lower + (i as f64 + 0.5) * h) * h)
            .sum();
        pmf.push(mass);
        lower = upper;
    }
    pmf.push(0.0); // overflow tail, negligible for in-range baselines
    let total: f64 = pmf.iter().sum();
    if total > 0.0 {
        for p in &mut pmf {
            *p /= total;
        }
    }
    pmf
}

/// Windowed score-drift detector. All timestamps are explicit; the
/// [`crate::monitor::Monitor`] wrapper supplies [`crate::clock::now`].
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// Frozen baseline pmf over [`distance_bounds`].
    baseline: Vec<f64>,
    /// Enrolment-time distances accumulated before [`Self::freeze_baseline`].
    pending_baseline: Vec<f64>,
    /// Windowed distances of every verify decision (accepted or not).
    distances: WindowedHistogram,
    accepts: WindowedCounter,
    rejects: WindowedCounter,
    quality_rejects: WindowedCounter,
    degraded: WindowedCounter,
}

impl DriftDetector {
    /// A detector with the paper-operating-point baseline (genuine
    /// distances ≈ N(0.4884, 0.09²)).
    pub fn new(config: DriftConfig) -> Self {
        let bounds = distance_bounds();
        let baseline = gaussian_pmf(0.4884, 0.09, &bounds);
        let distances = WindowedHistogram::new(config.window_secs, config.slots, bounds);
        let (window_secs, slots) = (config.window_secs, config.slots);
        let counter = || WindowedCounter::new(window_secs, slots);
        DriftDetector {
            config,
            baseline,
            pending_baseline: Vec::new(),
            distances,
            accepts: counter(),
            rejects: counter(),
            quality_rejects: counter(),
            degraded: counter(),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The frozen baseline pmf over [`distance_bounds`] (overflow last).
    pub fn baseline(&self) -> &[f64] {
        &self.baseline
    }

    /// Accumulates enrolment-time genuine distances for the baseline.
    pub fn extend_baseline(&mut self, distances: &[f64]) {
        self.pending_baseline
            .extend(distances.iter().copied().filter(|d| d.is_finite()));
    }

    /// Freezes the baseline from the accumulated enrolment distances.
    /// With no accumulated samples the paper-derived default stays.
    pub fn freeze_baseline(&mut self) {
        if self.pending_baseline.is_empty() {
            return;
        }
        let bounds = distance_bounds();
        let mut counts = vec![0u64; bounds.len() + 1];
        for &d in &self.pending_baseline {
            let i = bounds.partition_point(|&b| b < d).min(bounds.len());
            counts[i] += 1;
        }
        let total = self.pending_baseline.len() as f64;
        self.baseline = counts.iter().map(|&c| c as f64 / total).collect();
        self.pending_baseline.clear();
    }

    /// Records one verify decision at `now_ns`.
    pub fn observe_decision_at(
        &mut self,
        now_ns: u64,
        distance: f64,
        accepted: bool,
        degraded: bool,
    ) {
        self.distances.observe_at(now_ns, distance);
        if accepted {
            self.accepts.inc_at(now_ns);
        } else {
            self.rejects.inc_at(now_ns);
        }
        if degraded {
            self.degraded.inc_at(now_ns);
        }
    }

    /// Records one quality-gate rejection at `now_ns` (no distance: the
    /// probe never reached the pipeline).
    pub fn observe_quality_reject_at(&mut self, now_ns: u64) {
        self.quality_rejects.inc_at(now_ns);
    }

    /// PSI between the frozen baseline and the windowed distance pmf.
    pub fn psi_at(&self, now_ns: u64) -> f64 {
        psi(&self.baseline, &self.distances.pmf_at(now_ns))
    }

    /// KS statistic between the frozen baseline and the windowed
    /// distance pmf.
    pub fn ks_at(&self, now_ns: u64) -> f64 {
        ks_statistic(&self.baseline, &self.distances.pmf_at(now_ns))
    }

    /// The live windowed distance histogram.
    pub fn distances(&self) -> &WindowedHistogram {
        &self.distances
    }

    /// Folds the four signals into one [`HealthReport`] at `now_ns`.
    pub fn health_at(&self, now_ns: u64) -> HealthReport {
        let decisions = self.accepts.total_at(now_ns) + self.rejects.total_at(now_ns);
        let quality = self.quality_rejects.total_at(now_ns);
        let attempts = decisions + quality;
        let sufficient = attempts >= self.config.min_decisions;
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let cfg = &self.config;
        let mut signals = vec![
            SignalReading::judge(
                HealthSignal::DistanceDrift,
                if self.distances.count_at(now_ns) == 0 {
                    0.0
                } else {
                    self.psi_at(now_ns)
                },
                cfg.psi_warn,
                cfg.psi_alarm,
            ),
            SignalReading::judge(
                HealthSignal::RejectRateSpike,
                ratio(self.rejects.total_at(now_ns) + quality, attempts),
                cfg.reject_warn,
                cfg.reject_alarm,
            ),
            SignalReading::judge(
                HealthSignal::DegradedRatio,
                ratio(self.degraded.total_at(now_ns), decisions),
                cfg.degraded_warn,
                cfg.degraded_alarm,
            ),
            SignalReading::judge(
                HealthSignal::FrrProxy,
                ratio(self.rejects.total_at(now_ns), decisions),
                cfg.frr_warn,
                cfg.frr_alarm,
            ),
        ];
        if !sufficient {
            // Too little traffic to judge: report the raw values but do
            // not page anyone over two probes.
            for s in &mut signals {
                s.status = HealthStatus::Healthy;
            }
        }
        let status = signals
            .iter()
            .map(|s| s.status)
            .max()
            .unwrap_or(HealthStatus::Healthy);
        HealthReport {
            status,
            signals,
            decisions,
            sufficient,
        }
    }

    /// Clears the sliding windows (the frozen baseline survives).
    pub fn clear_windows(&mut self) {
        self.distances.clear();
        self.accepts.clear();
        self.rejects.clear();
        self.quality_rejects.clear();
        self.degraded.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_zero_for_identical_pmfs() {
        let p = vec![0.2, 0.3, 0.5];
        assert!(psi(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn psi_grows_with_shift() {
        let p = vec![0.8, 0.15, 0.05];
        let mild = vec![0.7, 0.2, 0.1];
        let wild = vec![0.05, 0.15, 0.8];
        assert!(psi(&p, &mild) < psi(&p, &wild));
        assert!(psi(&p, &wild) > 1.0);
        // Symmetric enough to be a distance-like score: both directions
        // are positive.
        assert!(psi(&wild, &p) > 0.0);
    }

    #[test]
    fn psi_survives_empty_buckets() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!(psi(&p, &q).is_finite());
    }

    #[test]
    fn ks_bounds_and_ordering() {
        let p = vec![1.0, 0.0, 0.0];
        let q = vec![0.0, 0.0, 1.0];
        assert!((ks_statistic(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(ks_statistic(&p, &p), 0.0);
        let mild = vec![0.8, 0.2, 0.0];
        assert!(ks_statistic(&p, &mild) < ks_statistic(&p, &q));
    }

    #[test]
    fn status_labels_and_ordering() {
        assert_eq!(HealthStatus::Healthy.label(), "healthy");
        assert_eq!(HealthStatus::Degrading.label(), "degrading");
        assert_eq!(HealthStatus::Alarm.label(), "alarm");
        assert!(HealthStatus::Alarm > HealthStatus::Degrading);
        assert!(HealthStatus::Degrading > HealthStatus::Healthy);
        assert_eq!(HealthSignal::DistanceDrift.label(), "distance_drift");
        assert_eq!(HealthSignal::FrrProxy.label(), "frr_proxy");
    }

    #[test]
    fn detector_is_healthy_on_baseline_like_traffic() {
        let mut d = DriftDetector::new(DriftConfig::default());
        // Baseline frozen from enrolment-time distances; live traffic
        // follows the same distribution, all accepted.
        let calib: Vec<f64> = (0..24).map(|i| 0.40 + 0.01 * (i % 10) as f64).collect();
        d.extend_baseline(&calib);
        d.freeze_baseline();
        for i in 0..40u64 {
            let dist = 0.40 + 0.01 * (i % 10) as f64;
            d.observe_decision_at(i + 1, dist, true, false);
        }
        let report = d.health_at(41);
        assert_eq!(report.status, HealthStatus::Healthy);
        assert!(report.sufficient);
        assert!(report.reasons().is_empty());
        assert!(d.psi_at(41) < d.config().psi_warn, "psi {}", d.psi_at(41));
    }

    #[test]
    fn detector_flags_distance_drift() {
        let mut d = DriftDetector::new(DriftConfig::default());
        // The whole distribution walks up to the impostor mean: a drift
        // the threshold-side counters alone would miss until FRR spikes.
        for i in 0..40u64 {
            d.observe_decision_at(i + 1, 0.70 + 0.002 * (i % 10) as f64, true, false);
        }
        let report = d.health_at(41);
        assert!(report.status >= HealthStatus::Degrading);
        assert!(report
            .reasons()
            .iter()
            .any(|s| s.signal == HealthSignal::DistanceDrift));
        assert!(d.ks_at(41) > 0.5);
    }

    #[test]
    fn detector_flags_reject_spike_and_frr() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..20u64 {
            d.observe_decision_at(i + 1, 0.49, i % 4 == 0, false);
            d.observe_quality_reject_at(i + 1);
        }
        let report = d.health_at(21);
        assert_eq!(report.status, HealthStatus::Alarm);
        let reasons: Vec<_> = report.reasons().iter().map(|s| s.signal).collect();
        assert!(reasons.contains(&HealthSignal::RejectRateSpike));
        assert!(reasons.contains(&HealthSignal::FrrProxy));
    }

    #[test]
    fn detector_flags_degraded_ratio() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..16u64 {
            d.observe_decision_at(i + 1, 0.48, true, i % 2 == 0);
        }
        let report = d.health_at(17);
        assert!(report
            .reasons()
            .iter()
            .any(|s| s.signal == HealthSignal::DegradedRatio));
    }

    #[test]
    fn thin_traffic_never_alarms() {
        let mut d = DriftDetector::new(DriftConfig::default());
        d.observe_decision_at(1, 1.5, false, true);
        d.observe_quality_reject_at(2);
        let report = d.health_at(3);
        assert_eq!(report.status, HealthStatus::Healthy);
        assert!(!report.sufficient);
    }

    #[test]
    fn frozen_baseline_replaces_paper_default() {
        let mut d = DriftDetector::new(DriftConfig::default());
        let default_baseline = d.baseline().to_vec();
        d.extend_baseline(&[0.2, 0.21, 0.22, 0.19, f64::NAN]);
        d.freeze_baseline();
        assert_ne!(d.baseline(), default_baseline.as_slice());
        assert!((d.baseline().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Traffic matching the new baseline is healthy…
        let like_baseline = [0.19, 0.2, 0.21, 0.22];
        for i in 0..20u64 {
            d.observe_decision_at(i + 1, like_baseline[(i % 4) as usize], true, false);
        }
        assert_eq!(d.health_at(21).status, HealthStatus::Healthy);
        // …and freezing with nothing pending is a no-op.
        let frozen = d.baseline().to_vec();
        d.freeze_baseline();
        assert_eq!(d.baseline(), frozen.as_slice());
    }

    #[test]
    fn clear_windows_keeps_baseline() {
        let mut d = DriftDetector::new(DriftConfig::default());
        d.extend_baseline(&[0.3; 10]);
        d.freeze_baseline();
        let baseline = d.baseline().to_vec();
        for i in 0..20u64 {
            d.observe_decision_at(i + 1, 1.4, false, false);
        }
        d.clear_windows();
        assert_eq!(d.baseline(), baseline.as_slice());
        assert_eq!(d.health_at(21).decisions, 0);
        assert_eq!(d.health_at(21).status, HealthStatus::Healthy);
    }

    #[test]
    fn report_serialises_with_signal_labels() {
        let d = DriftDetector::new(DriftConfig::default());
        let json = d.health_at(1).to_json().to_json();
        assert!(json.contains("\"status\":\"healthy\""));
        for label in [
            "distance_drift",
            "reject_rate_spike",
            "degraded_ratio",
            "frr_proxy",
        ] {
            assert!(json.contains(label), "missing {label}");
        }
    }

    #[test]
    fn distance_bounds_cover_cosine_range() {
        let bounds = distance_bounds();
        assert_eq!(bounds.len(), 16);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!((bounds[15] - 1.6).abs() < 1e-12);
    }
}
