//! Allocation profiling: a counting global allocator that attributes
//! heap traffic to the innermost active span path.
//!
//! This promotes the counting-allocator idiom from the zero-alloc
//! hot-path tests (DESIGN §15) into a reusable layer: a binary opts in
//! with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mandipass_telemetry::alloc::ProfilingAlloc =
//!     mandipass_telemetry::alloc::ProfilingAlloc;
//! ```
//!
//! With only the allocator installed, [`ProfilingAlloc`] counts raw
//! totals (one relaxed atomic add per alloc/free — the
//! [`totals`]/`zero_alloc`-style assertions build on this). Attribution
//! is a second, opt-in layer behind `MANDIPASS_PROFILE_ALLOC` (or
//! [`set_enabled`]): each allocation and free is then charged to the
//! current thread's dot-joined span path (with the
//! [`crate::profile::set_thread_root`] label applied, so both profiles
//! share keys), and allocations outside any span land under
//! `(no-span)`. The result pinpoints *which stage* escapes the arenas,
//! not just that something allocated.
//!
//! Reentrancy: attributing an allocation itself allocates (the key
//! string, the map node). A thread-local `IN_HOOK` flag makes those
//! inner allocations count only toward the raw totals, never recurse
//! into attribution, and never retake the site-table lock — so the
//! hook cannot deadlock or loop, and attributed counts stay a faithful
//! census of the *instrumented* program's behaviour.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use mandipass_util::json::Value;

/// Environment variable that switches span-path attribution on
/// (`1`/`on`/`true`).
pub const PROFILE_ALLOC_ENV: &str = "MANDIPASS_PROFILE_ALLOC";

/// 0 = uninitialised, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Raw allocator totals, counted whenever [`ProfilingAlloc`] is
/// installed (attribution on or off).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True while this thread is inside the attribution hook.
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

fn init_from_env() -> u8 {
    let on = std::env::var(PROFILE_ALLOC_ENV)
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true"))
        .unwrap_or(false);
    let byte = if on { 2 } else { 1 };
    let _ = ENABLED.compare_exchange(0, byte, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed)
}

/// Whether span-path attribution is recording.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_from_env() == 2,
        b => b == 2,
    }
}

/// Switches attribution on or off programmatically, overriding the
/// environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Per-site (per span path) allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations attributed to this site.
    pub allocs: u64,
    /// Frees attributed to this site (the layout was freed while this
    /// site was innermost; cross-site frees are normal).
    pub frees: u64,
    /// Bytes allocated.
    pub bytes_allocated: u64,
    /// Bytes freed.
    pub bytes_freed: u64,
}

/// Site table: span path -> stats. `BTreeMap` for deterministic export
/// order, same as the CPU profiler.
static SITES: Mutex<BTreeMap<String, AllocStats>> = Mutex::new(BTreeMap::new());

fn sites_lock() -> std::sync::MutexGuard<'static, BTreeMap<String, AllocStats>> {
    SITES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The site label charged when no span is open on the thread.
pub const NO_SPAN: &str = "(no-span)";

/// Runs `f` with this thread's attribution hook masked. Any non-hook
/// code that locks [`SITES`] and then allocates or frees (cloning the
/// table, dropping its nodes) must run under this mask: otherwise the
/// hook fires mid-operation, retakes the already-held table lock, and
/// the thread self-deadlocks — which, because every allocating thread
/// then queues behind that lock, freezes the whole process.
fn with_hook_masked<T>(f: impl FnOnce() -> T) -> T {
    let prev = IN_HOOK.with(|flag| flag.replace(true));
    let out = f();
    IN_HOOK.with(|flag| flag.set(prev));
    out
}

fn attribute(bytes: usize, is_alloc: bool) {
    // The reentrancy guard must be taken before *anything* that can
    // allocate — including the lazy env read in `enabled()`.
    let entered = IN_HOOK.with(|flag| {
        if flag.get() {
            false
        } else {
            flag.set(true);
            true
        }
    });
    if !entered {
        return;
    }
    if enabled() {
        let update = |stats: &mut AllocStats| {
            if is_alloc {
                stats.allocs += 1;
                stats.bytes_allocated = stats.bytes_allocated.saturating_add(bytes as u64);
            } else {
                stats.frees += 1;
                stats.bytes_freed = stats.bytes_freed.saturating_add(bytes as u64);
            }
        };
        let attributed = crate::span::with_current_path(|path| {
            crate::profile::with_composed_key(path, |key| {
                update(sites_lock().entry(key.to_string()).or_default());
            });
        });
        if !attributed {
            update(sites_lock().entry(NO_SPAN.to_string()).or_default());
        }
    }
    IN_HOOK.with(|flag| flag.set(false));
}

/// Raw totals since process start (or the last [`reset_totals`]):
/// `(allocs, frees, bytes_allocated)`. Counted whenever the allocator
/// is installed, independent of attribution — the basis for
/// zero-steady-state-allocation assertions.
pub fn totals() -> (u64, u64, u64) {
    (
        TOTAL_ALLOCS.load(Ordering::Relaxed),
        TOTAL_FREES.load(Ordering::Relaxed),
        TOTAL_BYTES.load(Ordering::Relaxed),
    )
}

/// Zeroes the raw totals.
pub fn reset_totals() {
    TOTAL_ALLOCS.store(0, Ordering::Relaxed);
    TOTAL_FREES.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
}

/// Clears the attributed site table (raw totals are untouched).
pub fn reset() {
    with_hook_masked(|| sites_lock().clear());
}

/// An immutable snapshot of the attributed site table.
#[derive(Debug, Clone, Default)]
pub struct AllocProfile {
    sites: BTreeMap<String, AllocStats>,
}

/// Snapshots the site table without clearing it.
pub fn snapshot() -> AllocProfile {
    with_hook_masked(|| AllocProfile {
        sites: sites_lock().clone(),
    })
}

impl AllocProfile {
    /// The sites, keyed by span path, in lexicographic order.
    pub fn sites(&self) -> &BTreeMap<String, AllocStats> {
        &self.sites
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Folded-stack lines valued in bytes allocated, for byte-weighted
    /// flamegraphs (`a;b;c <bytes_allocated>`).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.sites {
            out.push_str(&path.replace('.', ";"));
            out.push(' ');
            out.push_str(&stats.bytes_allocated.to_string());
            out.push('\n');
        }
        out
    }

    /// Serialises the site table as JSON:
    /// `{"sites": {path: {allocs, frees, bytes_allocated,
    /// bytes_freed}}}`.
    pub fn to_json(&self) -> Value {
        let sites = self
            .sites
            .iter()
            .map(|(path, s)| {
                (
                    path.clone(),
                    Value::Object(vec![
                        ("allocs".to_string(), Value::Number(s.allocs as f64)),
                        ("frees".to_string(), Value::Number(s.frees as f64)),
                        (
                            "bytes_allocated".to_string(),
                            Value::Number(s.bytes_allocated as f64),
                        ),
                        (
                            "bytes_freed".to_string(),
                            Value::Number(s.bytes_freed as f64),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![("sites".to_string(), Value::Object(sites))])
    }
}

/// The counting, attributing global allocator. Install with
/// `#[global_allocator]` in binaries that want `/profile/alloc` data or
/// counting-allocator assertions; everything else keeps [`System`].
pub struct ProfilingAlloc;

// SAFETY: delegates every allocation verbatim to `System`; the
// bookkeeping never touches the returned memory and the reentrancy
// guard keeps the hook's own allocations out of the attribution path.
unsafe impl GlobalAlloc for ProfilingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
            TOTAL_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            attribute(layout.size(), true);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
        attribute(layout.size(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;

    // The test binary does not install `ProfilingAlloc`, so these tests
    // drive `attribute` directly; end-to-end coverage (with the
    // allocator installed) lives in `tests/profile_overhead.rs`.

    #[test]
    fn attribution_is_off_by_default_and_guarded() {
        let _lock = global_state_lock();
        set_enabled(false);
        reset();
        attribute(64, true);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn attribute_charges_no_span_outside_spans() {
        let _lock = global_state_lock();
        set_enabled(true);
        reset();
        attribute(128, true);
        attribute(128, false);
        let snap = snapshot();
        set_enabled(false);
        let stats = snap.sites()[NO_SPAN];
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.bytes_allocated, 128);
        assert_eq!(stats.bytes_freed, 128);
        reset();
    }

    #[test]
    fn folded_and_json_render_sites() {
        let _lock = global_state_lock();
        set_enabled(true);
        reset();
        attribute(32, true);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.folded(), "(no-span) 32\n");
        let json = snap.to_json().to_json();
        assert!(json.contains("\"bytes_allocated\":32"), "{json}");
        reset();
    }
}
