//! Hermetic observability substrate for the MandiPass workspace.
//!
//! The paper's headline usability claims are latency numbers (§VII
//! "response time ≤ 1 s", Table I RTC), so the reproduction needs a
//! first-class way to see where time and decisions go. This crate
//! provides that without any external dependency, mirroring the
//! workspace's hermetic-build policy (DESIGN.md §6):
//!
//! * [`span`] / [`SpanGuard`] — structured spans with nested scopes and
//!   monotonic timing. Opening a span pushes onto a thread-local stack;
//!   the RAII guard closes it on drop (including during unwinding), so
//!   instrumented code never leaks scope state.
//! * [`metrics`] — a global registry of atomic counters, gauges, and
//!   fixed-bucket histograms with quantile readout. The [`counter!`],
//!   [`gauge!`] and [`histogram!`] macros cache their handle in a
//!   call-site `static`, so a hot-path increment is one atomic add.
//! * [`sink`] — a pluggable output API. The default sink is silent and
//!   span creation early-outs on two relaxed atomic loads, so
//!   instrumentation costs ~nothing when disabled. `MANDIPASS_TELEMETRY`
//!   (`off`/`text`/`json`) or [`Builder`] select the stderr text sink or
//!   the JSON-lines sink (serialised via `mandipass_util::json`).
//! * **Deterministic mode** — with [`set_deterministic`] (or
//!   `MANDIPASS_TELEMETRY_DETERMINISTIC=1`) timestamps come from a
//!   per-thread logical clock instead of the wall clock, so the span
//!   tree recorded by [`capture`] is bit-stable across same-seed runs
//!   (the property `tests/determinism.rs` asserts).
//! * [`capture`] — records the span tree produced by a closure on the
//!   current thread and returns it as a [`span::SpanTree`], the input to
//!   [`report::latency_report`], which renders the per-stage latency
//!   breakdown behind the §VII.E overhead table.
//! * [`trace`] — end-to-end request tracing for the serve layer: wire
//!   trace ids (hex over JSON), per-request stage timings with the
//!   captured pipeline span tree, and a bounded [`TraceStore`] whose
//!   sampler keeps every error/degraded/slow request and a
//!   deterministic, order-independent fraction of the rest.
//! * [`profile`] + [`alloc`] — continuous profiling: every span close
//!   feeds a deterministic process-wide call tree (self/total time,
//!   counts, bucketed p50/p99 per frame) behind `MANDIPASS_PROFILE`,
//!   and an opt-in counting global allocator attributes heap traffic
//!   to the innermost span path behind `MANDIPASS_PROFILE_ALLOC`.
//!   Folded-stack and JSON exports serve at `/profile/cpu` and
//!   `/profile/alloc` on the monitor server.
//! * [`monitor`] + [`window`] / [`drift`] / [`flight`] / [`expose`] —
//!   the live-monitoring layer: sliding-window counters and histograms,
//!   score-drift detection (PSI/KS against a frozen enrolment-time
//!   baseline) folded into a typed [`HealthStatus`], a bounded flight
//!   recorder for failed verifications, and Prometheus-text/JSON
//!   exposition — offline via [`Monitor::snapshot`] or over an optional
//!   `MANDIPASS_MONITOR_ADDR` HTTP listener.
//!
//! # Example
//!
//! ```
//! use mandipass_telemetry as telemetry;
//!
//! telemetry::set_deterministic(true);
//! let ((), tree) = telemetry::capture(|| {
//!     let _outer = telemetry::span("verify");
//!     let _inner = telemetry::span("preprocess");
//! });
//! assert_eq!(tree.spans().len(), 2);
//! assert_eq!(tree.spans()[0].path, "verify");
//! assert_eq!(tree.spans()[1].path, "verify.preprocess");
//! telemetry::counter!("verify.total").inc();
//! ```

pub mod alloc;
pub mod clock;
pub mod drift;
pub mod expose;
pub mod flight;
pub mod metrics;
pub mod mode;
pub mod monitor;
pub mod profile;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

pub use alloc::{AllocProfile, AllocStats, ProfilingAlloc, PROFILE_ALLOC_ENV};
pub use clock::set_deterministic;
pub use drift::{DriftConfig, DriftDetector, HealthReport, HealthSignal, HealthStatus};
pub use expose::{render_prometheus, serve_from_env, MonitorServer, MONITOR_ADDR_ENV};
pub use flight::{FlightOutcome, FlightRecorder, VerifyFlight};
pub use metrics::{global as metrics, Counter, Gauge, Histogram, Registry};
pub use mode::{enabled, install_sink, mode, set_default_mode, set_mode, Builder, Mode};
pub use monitor::{global as monitor, Monitor, MonitorConfig};
pub use profile::{CpuProfile, FrameStats, PROFILE_ENV};
pub use sink::{JsonSink, Sink, TextSink};
pub use span::{capture, span, try_capture, SpanGuard, SpanRecord, SpanTree};
pub use trace::{
    attribution_report, format_trace_id, mint_id, parse_trace_id, RequestTrace, SampleReason,
    StageTiming, TraceConfig, TraceStore, TRACE_SAMPLE_ENV,
};
pub use window::{WindowedCounter, WindowedHistogram};

/// Emits a one-line narration event to the active sink (silent sink:
/// nothing). Replaces ad-hoc `eprintln!` progress lines so all operator
/// output flows through one code path.
pub fn event(message: &str) {
    if let Some(sink) = mode::active_sink() {
        sink.event(message);
    }
}

/// Caches a [`Counter`] handle in a call-site `static`: after the first
/// call the increment is a single atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics().counter($name))
    }};
}

/// Caches a [`Gauge`] handle in a call-site `static`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics().gauge($name))
    }};
}

/// Caches a [`Histogram`] handle (default latency buckets) in a
/// call-site `static`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics().histogram($name))
    }};
}

/// Serialises unit tests that mutate the global mode or clock state, so
/// the parallel test harness cannot interleave them.
#[cfg(test)]
pub(crate) mod test_sync {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_state_lock() -> MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_cache_one_handle_per_site() {
        for _ in 0..3 {
            counter!("lib.macro_counter").inc();
        }
        assert_eq!(metrics().counter("lib.macro_counter").get(), 3);
        gauge!("lib.macro_gauge").set(2.5);
        assert_eq!(metrics().gauge("lib.macro_gauge").get(), 2.5);
        histogram!("lib.macro_hist").observe(1.0);
        assert_eq!(metrics().histogram("lib.macro_hist").count(), 1);
    }

    #[test]
    fn event_is_silent_by_default() {
        // Must not panic (and must not require a sink).
        event("no sink installed");
    }
}
