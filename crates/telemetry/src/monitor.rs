//! The live-monitoring façade: one thread-safe object the pipeline
//! feeds and the exposition layer reads.
//!
//! [`Monitor`] owns a [`DriftDetector`] (windowed distance distribution
//! vs the frozen enrolment baseline), per-label windowed counters for
//! quality rejections and enclave audit activity, and a
//! [`FlightRecorder`] of failed verifications. Producers (the core
//! crate's authenticator and enclave) call the `observe_*` methods;
//! consumers read [`Monitor::health`] and [`Monitor::snapshot`] — the
//! latter is the offline equivalent of the HTTP endpoints in
//! [`crate::expose`], so tests and CI never need a socket.
//!
//! Most deployments use the process-wide [`global`] monitor; tests build
//! private instances.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use mandipass_util::json::Value;

use crate::clock;
use crate::drift::{DriftConfig, DriftDetector, HealthReport};
use crate::flight::{FlightRecorder, VerifyFlight};
use crate::trace::{RequestTrace, TraceConfig, TraceStore};
use crate::window::WindowedCounter;

/// Monitor-wide configuration: drift thresholds plus ring sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Drift-detector thresholds and window geometry.
    pub drift: DriftConfig,
    /// Flight-recorder ring capacity.
    pub flight_capacity: usize,
    /// Request-trace ring geometry and sampling rules.
    pub trace: TraceConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            drift: DriftConfig::default(),
            flight_capacity: 64,
            trace: TraceConfig::default(),
        }
    }
}

#[derive(Debug)]
struct MonitorInner {
    config: MonitorConfig,
    detector: DriftDetector,
    /// Windowed quality-reject counts keyed by reason label.
    quality_rejects: BTreeMap<String, WindowedCounter>,
    /// Windowed enclave audit activity keyed by [`AuditKind`] label.
    audit: BTreeMap<String, WindowedCounter>,
    flights: FlightRecorder,
    traces: TraceStore,
    /// The serving layer's circuit-breaker state document, when a
    /// breaker reports here (`Value::Null` otherwise). Injected into the
    /// health object so `GET /health` shows it.
    breaker: Value,
}

/// The live health monitor. All methods take `&self`; one mutex guards
/// the windows (observation paths are set-up-free and short).
#[derive(Debug)]
pub struct Monitor {
    inner: Mutex<MonitorInner>,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new(MonitorConfig::default())
    }
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        let detector = DriftDetector::new(config.drift.clone());
        let flights = FlightRecorder::new(config.flight_capacity);
        let traces = TraceStore::new(config.trace.clone());
        Monitor {
            inner: Mutex::new(MonitorInner {
                config,
                detector,
                quality_rejects: BTreeMap::new(),
                audit: BTreeMap::new(),
                flights,
                traces,
                breaker: Value::Null,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MonitorInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Accumulates enrolment-time genuine distances for the drift
    /// baseline.
    pub fn extend_baseline(&self, distances: &[f64]) {
        self.lock().detector.extend_baseline(distances);
    }

    /// Freezes the drift baseline from the accumulated distances.
    pub fn freeze_baseline(&self) {
        self.lock().detector.freeze_baseline();
    }

    /// Records one verify decision (distance comparison happened).
    pub fn observe_decision(&self, distance: f64, accepted: bool, degraded: bool) {
        let now = clock::now();
        self.lock()
            .detector
            .observe_decision_at(now, distance, accepted, degraded);
    }

    /// Records one quality-gate or pipeline rejection under `label`.
    pub fn observe_reject(&self, label: &str) {
        let now = clock::now();
        let mut inner = self.lock();
        inner.detector.observe_quality_reject_at(now);
        let (window_secs, slots) = (inner.config.drift.window_secs, inner.config.drift.slots);
        inner
            .quality_rejects
            .entry(label.to_string())
            .or_insert_with(|| WindowedCounter::new(window_secs, slots))
            .inc_at(now);
    }

    /// Records one enclave audit event under its kind label.
    pub fn observe_audit(&self, kind_label: &str) {
        let now = clock::now();
        let mut inner = self.lock();
        let (window_secs, slots) = (inner.config.drift.window_secs, inner.config.drift.slots);
        inner
            .audit
            .entry(kind_label.to_string())
            .or_insert_with(|| WindowedCounter::new(window_secs, slots))
            .inc_at(now);
    }

    /// Records one failed/degraded verification flight. A flight
    /// without an explicit trace id inherits the thread's active one
    /// (see [`crate::trace::scope`]), tying server-side failure detail
    /// to the id the client saw.
    pub fn record_flight(&self, mut flight: VerifyFlight) {
        let now = clock::now();
        flight.trace_id = flight.trace_id.or_else(crate::trace::current);
        self.lock().flights.record_at(now, flight);
    }

    /// Publishes the serving layer's circuit-breaker state document so
    /// `GET /health` and [`Monitor::snapshot`] expose it next to the
    /// drift verdict.
    pub fn set_breaker_state(&self, state: Value) {
        self.lock().breaker = state;
    }

    /// Records one circuit-breaker transition: a [`FlightOutcome::Breaker`]
    /// flight (detail carries `from`/`to`/`reason`) plus the published
    /// state document. Transitions survive in the flight ring like any
    /// other incident-relevant event.
    pub fn observe_breaker_transition(&self, from: &str, to: &str, reason: &str, state: Value) {
        let mut flight = VerifyFlight::new(0, crate::flight::FlightOutcome::Breaker);
        flight.detail = Value::Object(vec![
            ("from".to_string(), Value::String(from.to_string())),
            ("to".to_string(), Value::String(to.to_string())),
            ("reason".to_string(), Value::String(reason.to_string())),
        ]);
        self.record_flight(flight);
        self.set_breaker_state(state);
    }

    /// Offers one request trace to the sampled store; returns whether
    /// it was retained.
    pub fn record_trace(&self, trace: RequestTrace) -> bool {
        let now = clock::now();
        self.lock().traces.offer_at(now, trace)
    }

    /// The retained sampled traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.lock().traces.traces()
    }

    /// The most recent retained trace with this id.
    pub fn find_trace(&self, trace_id: u64) -> Option<RequestTrace> {
        self.lock().traces.find(trace_id)
    }

    /// The detector's verdict for the window ending now.
    pub fn health(&self) -> HealthReport {
        let now = clock::now();
        self.lock().detector.health_at(now)
    }

    /// The retained flight records, oldest first.
    pub fn flights(&self) -> Vec<VerifyFlight> {
        self.lock().flights.flights()
    }

    /// PSI between the frozen baseline and the live windowed distances.
    pub fn psi(&self) -> f64 {
        let now = clock::now();
        self.lock().detector.psi_at(now)
    }

    /// KS statistic between the frozen baseline and the live windowed
    /// distances.
    pub fn ks(&self) -> f64 {
        let now = clock::now();
        self.lock().detector.ks_at(now)
    }

    /// The offline exposition document — one schema shared by tests,
    /// the bench bins, and the `/health` + `/flight` endpoints:
    ///
    /// ```json
    /// {"health": {...}, "window": {"distance": {...},
    ///  "quality_rejects": {...}, "audit": {...}},
    ///  "flights": [...], "metrics": {...}}
    /// ```
    pub fn snapshot(&self) -> Value {
        let now = clock::now();
        let inner = self.lock();
        let mut health = inner.detector.health_at(now).to_json();
        if let (Value::Object(members), breaker) = (&mut health, &inner.breaker) {
            if *breaker != Value::Null {
                members.push(("breaker".to_string(), breaker.clone()));
            }
        }
        let distances = inner.detector.distances();
        let num = |v: f64| {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        };
        let distance = Value::Object(vec![
            (
                "count".to_string(),
                Value::Number(distances.count_at(now) as f64),
            ),
            ("mean".to_string(), num(distances.mean_at(now))),
            ("p50".to_string(), num(distances.quantile_at(now, 0.5))),
            ("p90".to_string(), num(distances.quantile_at(now, 0.9))),
            ("psi".to_string(), num(inner.detector.psi_at(now))),
            ("ks".to_string(), num(inner.detector.ks_at(now))),
        ]);
        let counters = |map: &BTreeMap<String, WindowedCounter>| {
            Value::Object(
                map.iter()
                    .map(|(k, c)| (k.clone(), Value::Number(c.total_at(now) as f64)))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("health".to_string(), health),
            (
                "window".to_string(),
                Value::Object(vec![
                    ("distance".to_string(), distance),
                    (
                        "quality_rejects".to_string(),
                        counters(&inner.quality_rejects),
                    ),
                    ("audit".to_string(), counters(&inner.audit)),
                ]),
            ),
            ("flights".to_string(), inner.flights.to_json()),
            ("traces".to_string(), inner.traces.to_json()),
            (
                "metrics".to_string(),
                crate::metrics::global().snapshot_json(),
            ),
        ])
    }

    /// Clears every sliding window and the flight ring; the frozen drift
    /// baseline and the configuration survive. Lets one process run
    /// separate monitored phases (and keeps the integration tests
    /// independent under the never-expiring logical clock).
    pub fn reset_windows(&self) {
        let mut inner = self.lock();
        inner.detector.clear_windows();
        inner.quality_rejects.clear();
        inner.audit.clear();
        inner.flights.clear();
        inner.traces.clear();
    }
}

/// The process-wide monitor, fed by default-constructed deployments.
pub fn global() -> &'static Monitor {
    static GLOBAL: OnceLock<Monitor> = OnceLock::new();
    GLOBAL.get_or_init(Monitor::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::HealthStatus;
    use crate::flight::{FlightOutcome, VerifyFlight};
    use crate::test_sync::global_state_lock;

    #[test]
    fn monitor_routes_observations_to_health() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = Monitor::default();
        let calibration = [0.45, 0.47, 0.49, 0.51];
        m.extend_baseline(&calibration);
        m.freeze_baseline();
        // Match the baseline's distribution so only the volume changes.
        for i in 0..12 {
            m.observe_decision(calibration[i % calibration.len()], true, false);
        }
        let report = m.health();
        crate::set_deterministic(false);
        assert_eq!(report.status, HealthStatus::Healthy);
        assert_eq!(report.decisions, 12);
    }

    #[test]
    fn monitor_snapshot_has_the_shared_schema() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = Monitor::default();
        m.observe_decision(1.3, false, false);
        m.observe_reject("dead_axis");
        m.observe_audit("load");
        let mut flight = VerifyFlight::new(3, FlightOutcome::Rejected);
        flight.distance = Some(1.3);
        m.record_flight(flight);
        let snap = m.snapshot();
        crate::set_deterministic(false);
        for key in ["health", "window", "flights", "traces", "metrics"] {
            assert!(snap.get(key).is_some(), "snapshot misses {key}");
        }
        let window = snap.get("window").unwrap();
        assert_eq!(
            window
                .get("quality_rejects")
                .and_then(|q| q.get("dead_axis"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            window
                .get("audit")
                .and_then(|a| a.get("load"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        let flights = snap.get("flights").and_then(Value::as_array).unwrap();
        assert_eq!(flights.len(), 1);
        assert_eq!(
            flights[0].get("outcome").and_then(Value::as_str),
            Some("rejected")
        );
    }

    #[test]
    fn reset_windows_keeps_baseline_and_config() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = Monitor::default();
        m.extend_baseline(&[0.3; 8]);
        m.freeze_baseline();
        for _ in 0..20 {
            m.observe_decision(1.4, false, false);
            m.observe_reject("saturated");
        }
        assert_ne!(m.health().status, HealthStatus::Healthy);
        m.reset_windows();
        let report = m.health();
        assert_eq!(report.status, HealthStatus::Healthy);
        assert_eq!(report.decisions, 0);
        assert!(m.flights().is_empty());
        // Baseline survived: matching traffic stays healthy.
        for _ in 0..10 {
            m.observe_decision(0.3, true, false);
        }
        let after = m.health();
        crate::set_deterministic(false);
        assert_eq!(after.status, HealthStatus::Healthy);
    }

    #[test]
    fn traces_flow_through_the_monitor_and_tag_flights() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = Monitor::default();
        let mut trace = RequestTrace::new(0xbeef, "verify", "accepted");
        trace.total_nanos = 10;
        assert!(m.record_trace(trace));
        assert_eq!(m.traces().len(), 1);
        let found = m.find_trace(0xbeef).unwrap_or_else(|| panic!("trace lost"));
        assert_eq!(found.endpoint, "verify");
        // A flight recorded inside an open trace scope inherits the id.
        {
            let _scope = crate::trace::scope(0xbeef);
            m.record_flight(VerifyFlight::new(1, FlightOutcome::Rejected));
        }
        assert_eq!(m.flights()[0].trace_id, Some(0xbeef));
        let snap = m.snapshot();
        crate::set_deterministic(false);
        let retained = snap
            .get("traces")
            .and_then(|t| t.get("traces"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(retained.len(), 1);
        m.reset_windows();
        assert!(m.traces().is_empty());
    }

    #[test]
    fn breaker_transitions_surface_in_health_and_flights() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = Monitor::default();
        // Before any breaker reports, the health object stays untouched.
        assert!(m.snapshot().get("health").unwrap().get("breaker").is_none());
        m.observe_breaker_transition(
            "closed",
            "open",
            "error_rate",
            Value::Object(vec![(
                "state".to_string(),
                Value::String("open".to_string()),
            )]),
        );
        let snap = m.snapshot();
        crate::set_deterministic(false);
        let breaker = snap
            .get("health")
            .and_then(|h| h.get("breaker"))
            .unwrap_or_else(|| panic!("health misses the breaker document"));
        assert_eq!(breaker.get("state").and_then(Value::as_str), Some("open"));
        let flights = m.flights();
        assert_eq!(flights.len(), 1);
        assert_eq!(flights[0].outcome, FlightOutcome::Breaker);
        assert_eq!(
            flights[0].detail.get("to").and_then(Value::as_str),
            Some("open")
        );
    }

    #[test]
    fn global_monitor_is_one_instance() {
        let a = global() as *const Monitor;
        let b = global() as *const Monitor;
        assert_eq!(a, b);
    }
}
