//! Structured spans: nested scopes with monotonic timing.
//!
//! [`span`] opens a scope on a thread-local stack and returns a
//! [`SpanGuard`]; dropping the guard (normally or during unwinding)
//! closes the scope, computes the duration, and delivers the closed
//! span to the active sink. [`capture`] additionally retains every span
//! closed on the current thread and returns them as a [`SpanTree`] —
//! the structure behind the per-stage latency reports and the
//! bit-stable determinism assertions.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use mandipass_util::json::Value;

use crate::clock;
use crate::mode;
use crate::sink::SpanEvent;

/// One closed (or still-open, duration 0) span inside a [`SpanTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's own name.
    pub name: &'static str,
    /// Dot-joined path from the outermost open span.
    pub path: String,
    /// Nesting depth (1 = root).
    pub depth: usize,
    /// Start timestamp (wall nanoseconds, or logical ticks in
    /// deterministic mode).
    pub start: u64,
    /// `end - start`, same unit as `start`.
    pub duration: u64,
    /// Index of the enclosing captured span, if any.
    pub parent: Option<usize>,
}

/// The spans recorded by one [`capture`], in open order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// All recorded spans, in the order they were opened.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of spans named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Sum of durations of spans named `name`.
    pub fn total_duration(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration)
            .sum()
    }

    /// Serialises the tree as nested JSON:
    /// `[{"name", "start", "dur", "children": [...]}, ...]`.
    pub fn to_json(&self) -> Value {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn node(tree: &SpanTree, children: &[Vec<usize>], i: usize) -> Value {
            let span = &tree.spans[i];
            let mut members = vec![
                ("name".to_string(), Value::String(span.name.to_string())),
                ("start".to_string(), Value::Number(span.start as f64)),
                ("dur".to_string(), Value::Number(span.duration as f64)),
            ];
            if !children[i].is_empty() {
                members.push((
                    "children".to_string(),
                    Value::Array(
                        children[i]
                            .iter()
                            .map(|&c| node(tree, children, c))
                            .collect(),
                    ),
                ));
            }
            Value::Object(members)
        }
        Value::Array(roots.iter().map(|&r| node(self, &children, r)).collect())
    }
}

/// One open span on the thread's stack.
struct OpenSpan {
    name: &'static str,
    start: u64,
    /// Index into the capture buffer, when capturing.
    record: Option<usize>,
    /// Length of the thread path *before* this span was appended.
    path_len: usize,
    /// Sum of durations of directly nested spans that already closed;
    /// `duration - child_nanos` is this span's *self* time, the value
    /// the CPU profiler attributes to the frame itself.
    child_nanos: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<OpenSpan>,
    path: String,
    records: Vec<SpanRecord>,
    capturing: bool,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Number of threads currently inside [`capture`]; lets [`span`] skip
/// the thread-local entirely when telemetry is globally silent and
/// nothing captures.
static CAPTURING_THREADS: AtomicUsize = AtomicUsize::new(0);

/// RAII guard returned by [`span`]; closes the scope on drop.
///
/// Not `Send`: the guard must drop on the thread that opened the span.
#[derive(Debug)]
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard {
        active: false,
        _not_send: std::marker::PhantomData,
    };
}

/// Opens a span named `name`. When telemetry is silent and nothing is
/// capturing, this is two relaxed atomic loads and returns an inert
/// guard.
pub fn span(name: &'static str) -> SpanGuard {
    let sink_on = mode::enabled();
    let profiling = crate::profile::enabled();
    if !sink_on && !profiling && CAPTURING_THREADS.load(Ordering::Relaxed) == 0 {
        return SpanGuard::INERT;
    }
    STATE.with(|cell| {
        let mut state = cell.borrow_mut();
        if !sink_on && !profiling && !state.capturing {
            // Some *other* thread is capturing; this one stays inert.
            return SpanGuard::INERT;
        }
        let path_len = state.path.len();
        if !state.path.is_empty() {
            state.path.push('.');
        }
        state.path.push_str(name);
        let start = clock::now();
        let record = if state.capturing {
            let parent = state.stack.iter().rev().find_map(|open| open.record);
            let depth = state.stack.len() + 1;
            let path = state.path.clone();
            state.records.push(SpanRecord {
                name,
                path,
                depth,
                start,
                duration: 0,
                parent,
            });
            Some(state.records.len() - 1)
        } else {
            None
        };
        state.stack.push(OpenSpan {
            name,
            start,
            record,
            path_len,
            child_nanos: 0,
        });
        SpanGuard {
            active: true,
            _not_send: std::marker::PhantomData,
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // try_with: never panic out of a destructor during thread
        // teardown (the TLS value may already be gone).
        let _ = STATE.try_with(|cell| {
            let mut state = cell.borrow_mut();
            let Some(open) = state.stack.pop() else {
                return;
            };
            let duration = clock::now().saturating_sub(open.start);
            // Feed the enclosing span's self-time accounting, and the
            // CPU profiler while it is recording. `state.path` still
            // holds this span's full path (truncated below).
            if let Some(parent) = state.stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(duration);
            }
            if crate::profile::enabled() {
                let self_nanos = duration.saturating_sub(open.child_nanos);
                crate::profile::record(&state.path, duration, self_nanos);
            }
            if let Some(sink) = mode::active_sink() {
                sink.span_close(&SpanEvent {
                    name: open.name,
                    path: &state.path,
                    depth: state.stack.len() + 1,
                    start: open.start,
                    duration,
                });
            }
            if let Some(idx) = open.record {
                state.records[idx].duration = duration;
            }
            state.path.truncate(open.path_len);
        });
    }
}

/// Runs `f` with the current thread's dot-joined span path when at
/// least one span is open; returns `false` without calling `f`
/// otherwise. Uses `try_with`/`try_borrow` throughout because the
/// caller may be the allocation hook, which can fire while `STATE` is
/// already mutably borrowed (an allocation inside `span` itself) or
/// during thread teardown.
pub(crate) fn with_current_path(f: impl FnOnce(&str)) -> bool {
    STATE
        .try_with(|cell| match cell.try_borrow() {
            Ok(state) if !state.path.is_empty() => {
                f(&state.path);
                true
            }
            _ => false,
        })
        .unwrap_or(false)
}

/// Ends the capture session on drop, surviving unwinding.
struct CaptureEndGuard;

impl Drop for CaptureEndGuard {
    fn drop(&mut self) {
        let _ = STATE.try_with(|cell| {
            cell.borrow_mut().capturing = false;
        });
        CAPTURING_THREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `f` recording every span closed on the current thread, and
/// returns its result together with the recorded [`SpanTree`].
///
/// In deterministic mode the thread's logical clock is reset first, so
/// identical code paths yield bit-identical trees.
///
/// # Panics
///
/// Panics on nested `capture` calls on one thread.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, SpanTree) {
    STATE.with(|cell| {
        let mut state = cell.borrow_mut();
        assert!(
            !state.capturing,
            "nested telemetry::capture on one thread is not supported"
        );
        state.capturing = true;
        state.records.clear();
    });
    CAPTURING_THREADS.fetch_add(1, Ordering::Relaxed);
    clock::reset_logical();
    let _end = CaptureEndGuard;
    let result = f();
    let spans = STATE.with(|cell| std::mem::take(&mut cell.borrow_mut().records));
    (result, SpanTree { spans })
}

/// Like [`capture`], but composable: when the thread is already inside a
/// `capture` (an outer benchmark or test owns the records), `f` simply
/// runs and the tree is `None` — the outer session keeps every span.
/// Unlike [`capture`] this never resets the logical clock, so wrapping
/// pipeline stages in `try_capture` cannot perturb an enclosing
/// deterministic trace.
pub fn try_capture<R>(f: impl FnOnce() -> R) -> (R, Option<SpanTree>) {
    let nested = STATE.with(|cell| cell.borrow().capturing);
    if nested {
        return (f(), None);
    }
    STATE.with(|cell| {
        let mut state = cell.borrow_mut();
        state.capturing = true;
        state.records.clear();
    });
    CAPTURING_THREADS.fetch_add(1, Ordering::Relaxed);
    let _end = CaptureEndGuard;
    let result = f();
    let spans = STATE.with(|cell| std::mem::take(&mut cell.borrow_mut().records));
    (result, Some(SpanTree { spans }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;

    #[test]
    fn nested_spans_record_paths_depths_and_parents() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let ((), tree) = capture(|| {
            let _a = span("verify");
            {
                let _b = span("preprocess");
                let _c = span("detect");
            }
            let _d = span("similarity");
        });
        crate::set_deterministic(false);
        let names: Vec<&str> = tree.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["verify", "preprocess", "detect", "similarity"]);
        assert_eq!(tree.spans()[0].parent, None);
        assert_eq!(tree.spans()[1].parent, Some(0));
        assert_eq!(tree.spans()[2].parent, Some(1));
        assert_eq!(tree.spans()[3].parent, Some(0));
        assert_eq!(tree.spans()[2].path, "verify.preprocess.detect");
        assert_eq!(tree.spans()[2].depth, 3);
        // Deterministic ticks: every span has a non-zero duration and
        // children close before parents.
        assert!(tree.spans().iter().all(|s| s.duration > 0));
        assert!(tree.spans()[1].duration > tree.spans()[2].duration);
    }

    #[test]
    fn capture_is_bit_stable_in_deterministic_mode() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let run = || {
            capture(|| {
                let _a = span("a");
                let _b = span("b");
            })
            .1
        };
        let (first, second) = (run(), run());
        crate::set_deterministic(false);
        assert_eq!(first, second);
        assert_eq!(first.to_json().to_json(), second.to_json().to_json());
    }

    #[test]
    fn guard_unwind_pops_the_stack() {
        let _lock = global_state_lock();
        let caught = std::panic::catch_unwind(|| {
            let (_, _tree) = capture(|| {
                let _a = span("outer");
                let _b = span("inner");
                panic!("boom");
            });
        });
        assert!(caught.is_err());
        // The capture session ended and the stack unwound: a fresh
        // capture starts clean, with root depth 1 and an empty prefix.
        let ((), tree) = capture(|| {
            let _a = span("fresh");
        });
        assert_eq!(tree.spans().len(), 1);
        assert_eq!(tree.spans()[0].path, "fresh");
        assert_eq!(tree.spans()[0].depth, 1);
        assert_eq!(tree.spans()[0].parent, None);
    }

    #[test]
    fn silent_uncaptured_spans_are_inert() {
        let _lock = global_state_lock();
        crate::mode::set_mode(crate::Mode::Silent);
        let guard = span("invisible");
        assert!(!guard.active);
    }

    #[test]
    fn tree_json_nests_children() {
        let _lock = global_state_lock();
        let ((), tree) = capture(|| {
            let _a = span("root");
            let _b = span("child");
        });
        let json = tree.to_json().to_json();
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"children\":[{\"name\":\"child\""));
    }

    #[test]
    fn totals_aggregate_by_name() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let ((), tree) = capture(|| {
            for _ in 0..3 {
                let _s = span("stage");
            }
        });
        crate::set_deterministic(false);
        assert_eq!(tree.count("stage"), 3);
        assert_eq!(tree.total_duration("stage"), 3);
        assert_eq!(tree.count("absent"), 0);
    }

    #[test]
    fn try_capture_records_when_idle() {
        let _lock = global_state_lock();
        let (value, tree) = try_capture(|| {
            let _s = span("solo");
            17
        });
        assert_eq!(value, 17);
        let tree = tree.unwrap_or_else(|| panic!("idle try_capture must record"));
        assert_eq!(tree.count("solo"), 1);
    }

    #[test]
    fn try_capture_defers_to_an_outer_capture() {
        let _lock = global_state_lock();
        let ((), outer) = capture(|| {
            let _a = span("outer");
            let (inner_value, inner_tree) = try_capture(|| {
                let _b = span("inner");
                5
            });
            assert_eq!(inner_value, 5);
            assert!(inner_tree.is_none(), "nested try_capture must yield");
        });
        // The outer session kept both spans.
        assert_eq!(outer.count("outer"), 1);
        assert_eq!(outer.count("inner"), 1);
    }

    #[test]
    fn try_capture_does_not_reset_the_logical_clock() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let before = crate::clock::now();
        let ((), _tree) = try_capture(|| {
            let _s = span("tick");
        });
        let after = crate::clock::now();
        crate::set_deterministic(false);
        assert!(after > before, "logical clock must keep advancing");
    }
}
