//! Global sink selection: silent by default, switchable by environment
//! variable or builder.
//!
//! The mode is a process-wide atomic. `MANDIPASS_TELEMETRY` is read
//! lazily on the first telemetry touch; [`set_mode`], [`install_sink`]
//! and [`Builder`] override it programmatically. The fast path for
//! disabled telemetry is a single relaxed atomic load.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::sink::{JsonSink, Sink, TextSink};

/// The active output mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No sink: spans and events cost ~nothing (the default).
    Silent,
    /// Human-readable lines on stderr.
    Text,
    /// One JSON object per line on stderr (`mandipass_util::json`).
    Json,
    /// A caller-installed [`Sink`] implementation.
    Custom,
}

impl Mode {
    /// Parses an environment-variable value; unknown values are silent,
    /// so a typo can never flip telemetry on in production.
    pub fn from_env_str(value: &str) -> Mode {
        match value.trim().to_ascii_lowercase().as_str() {
            "text" | "stderr" | "1" | "on" => Mode::Text,
            "json" => Mode::Json,
            _ => Mode::Silent,
        }
    }
}

/// 0 = uninitialised, 1 = silent, 2 = text, 3 = json, 4 = custom.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The installed sink for text/json/custom modes.
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

fn sink_slot() -> std::sync::MutexGuard<'static, Option<Arc<dyn Sink>>> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn builtin_sink(mode: Mode) -> Option<Arc<dyn Sink>> {
    match mode {
        Mode::Text => Some(Arc::new(TextSink)),
        Mode::Json => Some(Arc::new(JsonSink)),
        _ => None,
    }
}

fn mode_byte(mode: Mode) -> u8 {
    match mode {
        Mode::Silent => 1,
        Mode::Text => 2,
        Mode::Json => 3,
        Mode::Custom => 4,
    }
}

fn init_from_env() -> u8 {
    let mode = std::env::var("MANDIPASS_TELEMETRY")
        .map(|v| Mode::from_env_str(&v))
        .unwrap_or(Mode::Silent);
    let byte = mode_byte(mode);
    // First initialiser wins; racing threads parsed the same env value.
    if MODE
        .compare_exchange(0, byte, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        *sink_slot() = builtin_sink(mode);
    }
    MODE.load(Ordering::Relaxed)
}

fn mode_byte_now() -> u8 {
    match MODE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        b => b,
    }
}

/// The active mode.
pub fn mode() -> Mode {
    match mode_byte_now() {
        2 => Mode::Text,
        3 => Mode::Json,
        4 => Mode::Custom,
        _ => Mode::Silent,
    }
}

/// Whether any sink is active. One relaxed atomic load once
/// initialised — this is the disabled-telemetry fast path.
pub fn enabled() -> bool {
    mode_byte_now() > 1
}

/// Selects a built-in sink (or silence), overriding the environment.
pub fn set_mode(mode: Mode) {
    let mode = if mode == Mode::Custom {
        // Custom without a sink would be enabled-but-silent; normalise.
        Mode::Silent
    } else {
        mode
    };
    *sink_slot() = builtin_sink(mode);
    MODE.store(mode_byte(mode), Ordering::Relaxed);
}

/// Installs a caller-provided sink and switches to [`Mode::Custom`].
pub fn install_sink(sink: Arc<dyn Sink>) {
    *sink_slot() = Some(sink);
    MODE.store(mode_byte(Mode::Custom), Ordering::Relaxed);
}

/// The sink spans and events are delivered to (`None` when silent).
pub(crate) fn active_sink() -> Option<Arc<dyn Sink>> {
    if !enabled() {
        return None;
    }
    sink_slot().clone()
}

/// Applies the mode only when the environment did not choose one —
/// lets binaries default to narrated output while still honouring an
/// explicit `MANDIPASS_TELEMETRY=off`.
pub fn set_default_mode(mode: Mode) {
    if std::env::var("MANDIPASS_TELEMETRY").is_err() && mode_byte_now() == 1 {
        set_mode(mode);
    }
}

/// Configures telemetry fluently:
///
/// ```
/// use mandipass_telemetry::{Builder, Mode};
/// Builder::new().mode(Mode::Silent).deterministic(false).install();
/// ```
#[derive(Debug, Default)]
pub struct Builder {
    mode: Option<Mode>,
    deterministic: Option<bool>,
}

impl Builder {
    /// An empty builder: nothing changes unless set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a built-in sink mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Selects the time source (see [`crate::set_deterministic`]).
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = Some(deterministic);
        self
    }

    /// Applies the configuration to the global telemetry state.
    pub fn install(self) {
        if let Some(mode) = self.mode {
            set_mode(mode);
        }
        if let Some(det) = self.deterministic {
            crate::clock::set_deterministic(det);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;

    #[test]
    fn env_values_parse_to_expected_modes() {
        assert_eq!(Mode::from_env_str("text"), Mode::Text);
        assert_eq!(Mode::from_env_str("STDERR"), Mode::Text);
        assert_eq!(Mode::from_env_str("json"), Mode::Json);
        assert_eq!(Mode::from_env_str(" Json "), Mode::Json);
        assert_eq!(Mode::from_env_str("off"), Mode::Silent);
        assert_eq!(Mode::from_env_str(""), Mode::Silent);
        assert_eq!(Mode::from_env_str("banana"), Mode::Silent);
    }

    #[test]
    fn set_mode_switches_sink_and_enabled_flag() {
        let _lock = global_state_lock();
        set_mode(Mode::Text);
        assert!(enabled());
        assert_eq!(mode(), Mode::Text);
        assert!(active_sink().is_some());
        set_mode(Mode::Silent);
        assert!(!enabled());
        assert!(active_sink().is_none());
    }

    #[test]
    fn custom_sink_installation_enables_custom_mode() {
        let _lock = global_state_lock();
        struct Probe;
        impl Sink for Probe {
            fn span_close(&self, _span: &crate::sink::SpanEvent<'_>) {}
            fn event(&self, _message: &str) {}
        }
        install_sink(Arc::new(Probe));
        assert_eq!(mode(), Mode::Custom);
        assert!(enabled());
        set_mode(Mode::Silent);
    }

    #[test]
    fn builder_installs_mode() {
        let _lock = global_state_lock();
        Builder::new().mode(Mode::Json).install();
        assert_eq!(mode(), Mode::Json);
        set_mode(Mode::Silent);
    }
}
