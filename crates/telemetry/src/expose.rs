//! Metrics and health exposition: Prometheus text rendering plus a
//! minimal GET-only HTTP server over `std::net::TcpListener`.
//!
//! Everything renders from [`Monitor::snapshot`], so the offline path
//! (tests, CI, bench bins) and the live endpoints share one schema:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4 (`# HELP` + `# TYPE`
//!   per family)
//! * `GET /health`  — the [`crate::drift::HealthReport`] as JSON
//! * `GET /flight`  — the retained flight records as JSON
//! * `GET /traces`  — the sampled request traces as JSON
//! * `GET /profile/cpu`   — the process CPU profile as folded stacks
//!   (`?format=json` for the nested call tree)
//! * `GET /profile/alloc` — the attributed allocation profile, same
//!   two formats
//!
//! Every response carries a `Content-Length`; unknown paths get a JSON
//! error body, and neither unknown paths nor non-GET methods disturb
//! subsequent requests.
//!
//! The server is opt-in via [`serve_from_env`] reading
//! `MANDIPASS_MONITOR_ADDR`; nothing in the crate binds a socket unless
//! asked to.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mandipass_util::json::Value;

use crate::monitor::Monitor;

/// Environment variable naming the exposition bind address
/// (e.g. `127.0.0.1:9464`).
pub const MONITOR_ADDR_ENV: &str = "MANDIPASS_MONITOR_ADDR";

/// Maps a health-status label to its exported gauge value.
fn status_code(label: &str) -> f64 {
    match label {
        "degrading" => 1.0,
        "alarm" => 2.0,
        _ => 0.0,
    }
}

/// Rewrites `name` into a valid Prometheus metric name under the
/// `mandipass_` namespace.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    if !name.starts_with("mandipass") {
        out.push_str("mandipass_");
    }
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() && out.is_empty() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Help text for the exposed metric families, keyed by the *sanitised*
/// family name. Curated entries cover the fixed monitor families;
/// dynamically named families (user counters/gauges/histograms) fall
/// through to a generated line, so every family always carries a
/// `# HELP` (the CI exposition lint enforces this).
fn help_text(name: &str) -> Option<&'static str> {
    Some(match name {
        "mandipass_health_status" => "Fused health status: 0 healthy, 1 degrading, 2 alarm.",
        "mandipass_health_sufficient" => {
            "1 when the drift window holds enough decisions to judge health."
        }
        "mandipass_window_decisions" => "Verify decisions in the current sliding window.",
        "mandipass_health_signal" => "Raw drift-signal value (PSI, KS, ...) per signal.",
        "mandipass_health_signal_status" => {
            "Per-signal health status: 0 healthy, 1 degrading, 2 alarm."
        }
        "mandipass_window_distance_count" => "Distance observations in the sliding window.",
        "mandipass_window_distance_mean" => "Mean verify distance in the sliding window.",
        "mandipass_window_distance_p50" => "Median verify distance in the sliding window.",
        "mandipass_window_distance_p90" => "90th-percentile verify distance in the window.",
        "mandipass_window_distance_psi" => {
            "Population stability index of window distances vs the frozen baseline."
        }
        "mandipass_window_distance_ks" => {
            "Kolmogorov-Smirnov statistic of window distances vs the frozen baseline."
        }
        "mandipass_window_quality_rejects" => "Quality-gate rejects in the window, by reason.",
        "mandipass_window_audit_events" => "Enclave audit events in the window, by kind.",
        "mandipass_flights_retained" => "Failed-verification flight records currently retained.",
        _ => return None,
    })
}

/// The `# HELP` line body for `name`: curated text when registered,
/// otherwise a generated description (never empty).
fn help_line(name: &str) -> String {
    match help_text(name) {
        Some(text) => text.to_string(),
        None => format!("Value of {name} from the mandipass monitor snapshot."),
    }
}

/// Escapes a label value per the text format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One metric family: `# HELP` + `# TYPE` headers plus its samples,
/// emitted only once per name so the output always passes the
/// duplicate-name lint.
struct Families {
    out: String,
    seen: BTreeSet<String>,
}

impl Families {
    fn new() -> Self {
        Families {
            out: String::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Emits one family; `samples` are `(labels, value)` pairs where
    /// `labels` is either empty or a rendered `{k="v",...}` block.
    fn family(&mut self, name: &str, kind: &str, samples: &[(String, f64)]) {
        let name = metric_name(name);
        if !self.seen.insert(name.clone()) {
            return;
        }
        let _ = writeln!(self.out, "# HELP {name} {}", help_line(&name));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        for (labels, value) in samples {
            if value.is_finite() {
                let _ = writeln!(self.out, "{name}{labels} {value}");
            }
        }
    }

    /// A summary family: quantile samples plus `_sum` and `_count`.
    fn summary(&mut self, name: &str, hist: &Value) {
        let name = metric_name(name);
        if !self.seen.insert(name.clone()) {
            return;
        }
        let _ = writeln!(self.out, "# HELP {name} {}", help_line(&name));
        let _ = writeln!(self.out, "# TYPE {name} summary");
        for (q, key) in [("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")] {
            if let Some(v) = hist.get(key).and_then(Value::as_f64) {
                let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {v}");
            }
        }
        let sum = hist.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
        let count = hist.get("count").and_then(Value::as_f64).unwrap_or(0.0);
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {count}");
    }
}

fn labelled(key: &str, value: &str) -> String {
    format!("{{{key}=\"{}\"}}", escape_label(value))
}

/// Renders a [`Monitor::snapshot`] document as Prometheus text format.
pub fn render_prometheus(snapshot: &Value) -> String {
    let mut fam = Families::new();

    if let Some(health) = snapshot.get("health") {
        let status = health.get("status").and_then(Value::as_str).unwrap_or("");
        fam.family(
            "health_status",
            "gauge",
            &[(String::new(), status_code(status))],
        );
        let sufficient = health
            .get("sufficient")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        fam.family(
            "health_sufficient",
            "gauge",
            &[(String::new(), if sufficient { 1.0 } else { 0.0 })],
        );
        let decisions = health
            .get("decisions")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        fam.family("window_decisions", "gauge", &[(String::new(), decisions)]);
        if let Some(signals) = health.get("signals").and_then(Value::as_array) {
            let mut values = Vec::new();
            let mut statuses = Vec::new();
            for s in signals {
                if let Some(label) = s.get("signal").and_then(Value::as_str) {
                    if let Some(v) = s.get("value").and_then(Value::as_f64) {
                        values.push((labelled("signal", label), v));
                    }
                    let code = status_code(s.get("status").and_then(Value::as_str).unwrap_or(""));
                    statuses.push((labelled("signal", label), code));
                }
            }
            fam.family("health_signal", "gauge", &values);
            fam.family("health_signal_status", "gauge", &statuses);
        }
    }

    if let Some(window) = snapshot.get("window") {
        if let Some(distance) = window.get("distance") {
            for (suffix, key) in [
                ("count", "count"),
                ("mean", "mean"),
                ("p50", "p50"),
                ("p90", "p90"),
                ("psi", "psi"),
                ("ks", "ks"),
            ] {
                if let Some(v) = distance.get(key).and_then(Value::as_f64) {
                    let name = format!("window_distance_{suffix}");
                    fam.family(&name, "gauge", &[(String::new(), v)]);
                }
            }
        }
        for (family, label_key, key) in [
            ("window_quality_rejects", "reason", "quality_rejects"),
            ("window_audit_events", "kind", "audit"),
        ] {
            if let Some(Value::Object(entries)) = window.get(key) {
                let samples: Vec<(String, f64)> = entries
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (labelled(label_key, k), n)))
                    .collect();
                fam.family(family, "gauge", &samples);
            }
        }
    }

    if let Some(flights) = snapshot.get("flights").and_then(Value::as_array) {
        fam.family(
            "flights_retained",
            "gauge",
            &[(String::new(), flights.len() as f64)],
        );
    }

    if let Some(metrics) = snapshot.get("metrics") {
        if let Some(Value::Object(counters)) = metrics.get("counters") {
            for (name, v) in counters {
                if let Some(n) = v.as_f64() {
                    let name = format!("{name}_total");
                    fam.family(&name, "counter", &[(String::new(), n)]);
                }
            }
        }
        if let Some(Value::Object(gauges)) = metrics.get("gauges") {
            for (name, v) in gauges {
                if let Some(n) = v.as_f64() {
                    fam.family(name, "gauge", &[(String::new(), n)]);
                }
            }
        }
        if let Some(Value::Object(histograms)) = metrics.get("histograms") {
            for (name, hist) in histograms {
                fam.summary(name, hist);
            }
        }
    }

    fam.out
}

fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Answers one request on `stream` from `monitor`'s current state.
///
/// `budget` bounds the whole read phase, not just one `read` call: the
/// per-read socket timeout (set in the accept loop) only fires on full
/// silence, so a half-open client trickling one byte per almost-timeout
/// would otherwise hold the single server thread indefinitely.
fn handle(monitor: &Monitor, stream: &mut TcpStream, budget: Duration) {
    let deadline = Instant::now() + budget;
    let mut buf = [0u8; 1024];
    let mut request = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(2).any(|w| w == b"\r\n")
                    || request.len() >= 8192
                    || Instant::now() >= deadline
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&request);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    // Profile endpoints take `?format=json`; other routes ignore any
    // query string rather than 404ing on it.
    let (route, query) = path.split_once('?').unwrap_or((path, ""));
    let json_wanted = query.split('&').any(|kv| kv == "format=json");
    let response = if method != "GET" {
        http_response("405 Method Not Allowed", "text/plain", "GET only\n")
    } else if route == "/profile/cpu" {
        // The profilers are process-global (like the metrics registry),
        // so these routes do not go through the monitor snapshot.
        let profile = crate::profile::snapshot();
        if json_wanted {
            http_response("200 OK", "application/json", &profile.to_json().to_json())
        } else {
            http_response("200 OK", "text/plain", &profile.folded())
        }
    } else if route == "/profile/alloc" {
        let profile = crate::alloc::snapshot();
        if json_wanted {
            http_response("200 OK", "application/json", &profile.to_json().to_json())
        } else {
            http_response("200 OK", "text/plain", &profile.folded())
        }
    } else {
        let snapshot = monitor.snapshot();
        match route {
            "/metrics" => http_response(
                "200 OK",
                "text/plain; version=0.0.4",
                &render_prometheus(&snapshot),
            ),
            "/health" => {
                let body = snapshot
                    .get("health")
                    .cloned()
                    .unwrap_or(Value::Null)
                    .to_json();
                http_response("200 OK", "application/json", &body)
            }
            "/flight" => {
                let body = snapshot
                    .get("flights")
                    .cloned()
                    .unwrap_or(Value::Array(Vec::new()))
                    .to_json();
                http_response("200 OK", "application/json", &body)
            }
            "/traces" => {
                let body = snapshot
                    .get("traces")
                    .cloned()
                    .unwrap_or(Value::Object(Vec::new()))
                    .to_json();
                http_response("200 OK", "application/json", &body)
            }
            _ => {
                // A JSON body (with the path escaped by the JSON
                // layer, not string-glued) so scripted clients can
                // tell a missing route from an empty document.
                let body = Value::Object(vec![
                    (
                        "error".to_string(),
                        Value::String("unknown path".to_string()),
                    ),
                    ("path".to_string(), Value::String(path.to_string())),
                ])
                .to_json();
                http_response("404 Not Found", "application/json", &body)
            }
        }
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

/// The background exposition server. Dropping it shuts the listener
/// down.
pub struct MonitorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MonitorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MonitorServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `monitor` on a background thread with the default 2 s read
    /// budget per connection.
    pub fn bind(monitor: &'static Monitor, addr: &str) -> std::io::Result<Self> {
        Self::bind_with_timeout(monitor, addr, Duration::from_secs(2))
    }

    /// [`MonitorServer::bind`] with an explicit per-connection read
    /// budget — a stalled or half-open client costs the server thread
    /// at most roughly one budget before the connection is shed.
    pub fn bind_with_timeout(
        monitor: &'static Monitor,
        addr: &str,
        read_timeout: Duration,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mandipass-monitor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = stream {
                        // Responses are one small write: Nagle would
                        // only delay them. The socket timeout breaks
                        // full silence; `handle`'s deadline breaks
                        // trickle feeds.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        handle(monitor, &mut stream, read_timeout);
                    }
                }
            })?;
        Ok(MonitorServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop re-checks the flag first.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the exposition server for the global monitor when
/// `MANDIPASS_MONITOR_ADDR` is set; `None` otherwise (the normal,
/// socket-free mode).
pub fn serve_from_env() -> Option<MonitorServer> {
    let addr = std::env::var(MONITOR_ADDR_ENV).ok()?;
    if addr.is_empty() {
        return None;
    }
    MonitorServer::bind(crate::monitor::global(), &addr).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightOutcome, VerifyFlight};
    use crate::monitor::{Monitor, MonitorConfig};
    use crate::test_sync::global_state_lock;

    fn fed_monitor() -> Monitor {
        let m = Monitor::new(MonitorConfig::default());
        let calibration = [0.45, 0.47, 0.49, 0.51];
        m.extend_baseline(&calibration);
        m.freeze_baseline();
        // Live traffic with the same distribution as the baseline keeps
        // the drift signal at zero.
        for i in 0..12 {
            m.observe_decision(calibration[i % calibration.len()], true, false);
        }
        m.observe_reject("dead_axis");
        let mut flight = VerifyFlight::new(2, FlightOutcome::Rejected);
        flight.distance = Some(0.9);
        m.record_flight(flight);
        let mut trace = crate::trace::RequestTrace::new(0xabc, "verify", "rejected");
        trace.total_nanos = 1200;
        trace.stage("decode", 200);
        trace.stage("verify", 900);
        m.record_trace(trace);
        m
    }

    fn lint(text: &str) {
        // No duplicate family names across `# TYPE` lines, and every
        // family carries a non-empty `# HELP` line before its `# TYPE`.
        let mut seen = BTreeSet::new();
        let mut typed = BTreeSet::new();
        let mut helped = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let text = parts.next().unwrap_or("").trim();
                assert!(!text.is_empty(), "empty HELP for {name}");
                helped.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                assert!(seen.insert(name.to_string()), "duplicate family {name}");
                assert!(helped.contains(name), "family {name} has no # HELP line");
                typed.insert(name.to_string());
            } else if !line.is_empty() {
                // Every sample's family must have been typed first
                // (summary samples carry _sum/_count suffixes).
                let sample = line.split(['{', ' ']).next().unwrap_or("");
                let known = typed.contains(sample)
                    || typed.contains(sample.trim_end_matches("_sum"))
                    || typed.contains(sample.trim_end_matches("_count"));
                assert!(known, "sample {sample} before its # TYPE line");
            }
        }
    }

    #[test]
    fn prometheus_output_passes_lint_and_carries_signals() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let m = fed_monitor();
        let text = render_prometheus(&m.snapshot());
        crate::set_deterministic(false);
        lint(&text);
        assert!(text.contains("# HELP mandipass_health_status "));
        assert!(text.contains("# TYPE mandipass_health_status gauge"));
        assert!(text.contains("mandipass_health_status 0"));
        assert!(text.contains("mandipass_health_signal{signal=\"distance_drift\"}"));
        assert!(text.contains("mandipass_window_quality_rejects{reason=\"dead_axis\"} 1"));
        assert!(text.contains("mandipass_flights_retained 1"));
    }

    #[test]
    fn metric_names_are_sanitised_and_namespaced() {
        assert_eq!(metric_name("verify.total"), "mandipass_verify_total");
        assert_eq!(metric_name("mandipass_x"), "mandipass_x");
        assert_eq!(metric_name("9lives"), "mandipass_9lives");
        assert_eq!(metric_name("a b/c"), "mandipass_a_b_c");
    }

    #[test]
    fn server_answers_all_routes() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        static SERVED: std::sync::OnceLock<Monitor> = std::sync::OnceLock::new();
        let monitor = SERVED.get_or_init(fed_monitor);
        let mut server =
            MonitorServer::bind(monitor, "127.0.0.1:0").unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        let fetch = |path: &str| {
            let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
            stream
                .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap_or_else(|e| panic!("write: {e}"));
            let mut body = String::new();
            let _ = stream.read_to_string(&mut body);
            body
        };
        let metrics = fetch("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("# TYPE mandipass_health_status gauge"));
        let health = fetch("/health");
        assert!(health.contains("application/json"));
        assert!(health.contains("\"status\":\"healthy\""));
        let flight = fetch("/flight");
        assert!(flight.contains("\"outcome\":\"rejected\""));
        let traces = fetch("/traces");
        assert!(traces.contains("application/json"));
        assert!(
            traces.contains("\"trace_id\":\"0000000000000abc\""),
            "{traces}"
        );
        // Profile routes are served from the process-global profilers.
        crate::profile::reset();
        crate::profile::set_enabled(true);
        {
            let _probe = crate::span("probe_route");
        }
        crate::profile::set_enabled(false);
        let cpu = fetch("/profile/cpu");
        assert!(cpu.starts_with("HTTP/1.1 200"), "{cpu}");
        assert!(cpu.contains("text/plain"), "{cpu}");
        assert!(cpu.contains("probe_route "), "{cpu}");
        let cpu_json = fetch("/profile/cpu?format=json");
        assert!(cpu_json.contains("application/json"), "{cpu_json}");
        assert!(cpu_json.contains("\"name\":\"probe_route\""), "{cpu_json}");
        let alloc = fetch("/profile/alloc");
        assert!(alloc.starts_with("HTTP/1.1 200"), "{alloc}");
        crate::profile::reset();
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        assert!(missing.contains("application/json"));
        assert!(missing.contains("\"error\":\"unknown path\""));
        server.shutdown();
        crate::set_deterministic(false);
    }

    #[test]
    fn unknown_paths_and_methods_leave_the_server_serving() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        static SERVED: std::sync::OnceLock<Monitor> = std::sync::OnceLock::new();
        let monitor = SERVED.get_or_init(fed_monitor);
        let mut server =
            MonitorServer::bind(monitor, "127.0.0.1:0").unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        let exchange = |request: &str| {
            let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
            stream
                .write_all(request.as_bytes())
                .unwrap_or_else(|e| panic!("write: {e}"));
            let mut body = String::new();
            let _ = stream.read_to_string(&mut body);
            body
        };
        // Every response — including errors — must carry Content-Length
        // matching its body, and the server must keep answering.
        let content_length_matches = |response: &str| {
            let header = response
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or_else(|| panic!("no Content-Length in {response}"));
            let body = response
                .split_once("\r\n\r\n")
                .map(|(_, b)| b)
                .unwrap_or("");
            assert_eq!(header, body.len(), "Content-Length mismatch: {response}");
        };
        let missing = exchange("GET /definitely/not/here HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        content_length_matches(&missing);
        let post = exchange("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        content_length_matches(&post);
        // Still serving after both error paths.
        let health = exchange("GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        content_length_matches(&health);
        server.shutdown();
        crate::set_deterministic(false);
    }

    #[test]
    fn half_open_client_cannot_wedge_the_exposition_server() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        static SERVED: std::sync::OnceLock<Monitor> = std::sync::OnceLock::new();
        let monitor = SERVED.get_or_init(fed_monitor);
        let mut server =
            MonitorServer::bind_with_timeout(monitor, "127.0.0.1:0", Duration::from_millis(100))
                .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        // A half-open client: connects, sends a partial request line
        // (no CR LF), then stalls with the connection open — the server
        // is mid-read when the bytes stop.
        let mut stalled = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        stalled
            .write_all(b"GET /met")
            .unwrap_or_else(|e| panic!("write: {e}"));
        // The single server thread must shed the stalled connection at
        // its read budget and answer the next client promptly.
        let start = Instant::now();
        let mut client = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        client
            .write_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap_or_else(|e| panic!("write: {e}"));
        let mut body = String::new();
        let _ = client.read_to_string(&mut body);
        assert!(body.starts_with("HTTP/1.1 200"), "{body}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stalled client wedged the server for {:?}",
            start.elapsed()
        );
        drop(stalled);
        server.shutdown();
        crate::set_deterministic(false);
    }

    #[test]
    fn serve_from_env_is_off_by_default() {
        let _lock = global_state_lock();
        std::env::remove_var(MONITOR_ADDR_ENV);
        assert!(serve_from_env().is_none());
    }
}
