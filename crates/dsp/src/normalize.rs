//! Min–max normalisation (§IV, Eq. 7).
//!
//! Different IMU axes oscillate around very different baseline values
//! (gravity components, gyro bias). The paper rescales every signal
//! segment into `[0, 1]` so small-amplitude axes are not drowned out when
//! the six axes are concatenated into one signal array.

/// Min–max normalises `segment` in place: `x ↦ (x − min) / (max − min)`.
///
/// A degenerate segment (constant, so `max == min`) maps to all `0.5`,
/// which keeps downstream gradient computation well defined.
///
/// ```
/// let mut seg = vec![2.0, 4.0, 6.0];
/// mandipass_dsp::normalize::min_max_in_place(&mut seg);
/// assert_eq!(seg, vec![0.0, 0.5, 1.0]);
/// ```
pub fn min_max_in_place(segment: &mut [f64]) {
    let Some((min, max)) = crate::stats::min_max(segment) else {
        return;
    };
    let range = max - min;
    if range == 0.0 {
        for x in segment.iter_mut() {
            *x = 0.5;
        }
        return;
    }
    for x in segment.iter_mut() {
        *x = (*x - min) / range;
    }
}

/// Returns a min–max-normalised copy of `segment`.
pub fn min_max(segment: &[f64]) -> Vec<f64> {
    let mut out = segment.to_vec();
    min_max_in_place(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_spans_zero_to_one() {
        let seg = vec![-5.0, 0.0, 10.0];
        let out = min_max(&seg);
        assert_eq!(out, vec![0.0, 1.0 / 3.0, 1.0]);
    }

    #[test]
    fn constant_segment_maps_to_half() {
        let out = min_max(&[7.0; 5]);
        assert_eq!(out, vec![0.5; 5]);
    }

    #[test]
    fn empty_segment_is_noop() {
        let out = min_max(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_ordering() {
        let seg = vec![3.0, -1.0, 2.0, 8.0];
        let out = min_max(&seg);
        for i in 0..seg.len() {
            for j in 0..seg.len() {
                assert_eq!(seg[i] < seg[j], out[i] < out[j]);
            }
        }
    }

    #[test]
    fn is_idempotent_up_to_float_error() {
        let seg = vec![0.1, 0.7, 0.3, 1.0, 0.0];
        let once = min_max(&seg);
        let twice = min_max(&once);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-15);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn values_always_in_unit_interval(seg in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let out = min_max(&seg);
            for v in out {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn extremes_map_to_bounds(seg in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let (min, max) = crate::stats::min_max(&seg).unwrap();
            prop_assume!(max > min);
            let out = min_max(&seg);
            let argmin = seg.iter().position(|&x| x == min).unwrap();
            let argmax = seg.iter().position(|&x| x == max).unwrap();
            prop_assert_eq!(out[argmin], 0.0);
            prop_assert_eq!(out[argmax], 1.0);
        }

        #[test]
        fn invariant_to_affine_input_shift(
            seg in proptest::collection::vec(-1e3f64..1e3, 2..100),
            shift in -1e3f64..1e3,
        ) {
            let (min, max) = crate::stats::min_max(&seg).unwrap();
            prop_assume!(max - min > 1e-6);
            let shifted: Vec<f64> = seg.iter().map(|x| x + shift).collect();
            let a = min_max(&seg);
            let b = min_max(&shifted);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
