//! Error type shared by the DSP primitives.

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP primitives in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// A filter was requested with an invalid order (zero or odd where even
    /// is required).
    InvalidOrder {
        /// The order that was requested.
        order: usize,
    },
    /// A cutoff frequency fell outside `(0, fs / 2)`.
    InvalidCutoff {
        /// The cutoff frequency that was requested, in Hz.
        cutoff_hz: f64,
        /// The sampling rate, in Hz.
        sample_rate_hz: f64,
    },
    /// An operation needed more samples than the input provided.
    TooShort {
        /// Samples required by the operation.
        needed: usize,
        /// Samples actually available.
        got: usize,
    },
    /// The vibration-start detector scanned the whole recording without
    /// finding a window that satisfies the start rule.
    VibrationNotFound,
    /// An input contained a non-finite value (NaN or ±∞).
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
    /// A multi-axis container was built from axes of mismatched lengths.
    AxisLengthMismatch {
        /// Length expected (that of the first axis).
        expected: usize,
        /// Mismatching length encountered.
        got: usize,
    },
    /// FFT input length was not a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidOrder { order } => {
                write!(
                    f,
                    "invalid filter order {order}: must be a positive even number"
                )
            }
            DspError::InvalidCutoff {
                cutoff_hz,
                sample_rate_hz,
            } => write!(
                f,
                "invalid cutoff {cutoff_hz} Hz for sample rate {sample_rate_hz} Hz: \
                 must lie strictly between 0 and Nyquist"
            ),
            DspError::TooShort { needed, got } => {
                write!(f, "input too short: needed {needed} samples, got {got}")
            }
            DspError::VibrationNotFound => {
                write!(f, "no window satisfied the vibration-start rule")
            }
            DspError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
            DspError::AxisLengthMismatch { expected, got } => {
                write!(f, "axis length mismatch: expected {expected}, got {got}")
            }
            DspError::NotPowerOfTwo { len } => {
                write!(f, "FFT length {len} is not a power of two")
            }
        }
    }
}

impl Error for DspError {}

/// Checks that every sample in `signal` is finite.
///
/// # Errors
///
/// Returns [`DspError::NonFinite`] with the index of the first offending
/// sample.
pub fn ensure_finite(signal: &[f64]) -> Result<(), DspError> {
    match signal.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(DspError::NonFinite { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_without_trailing_punctuation() {
        let errors = [
            DspError::InvalidOrder { order: 0 },
            DspError::InvalidCutoff {
                cutoff_hz: -1.0,
                sample_rate_hz: 100.0,
            },
            DspError::TooShort { needed: 10, got: 3 },
            DspError::VibrationNotFound,
            DspError::NonFinite { index: 4 },
            DspError::AxisLengthMismatch {
                expected: 5,
                got: 6,
            },
            DspError::NotPowerOfTwo { len: 12 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn ensure_finite_accepts_clean_input() {
        assert!(ensure_finite(&[0.0, 1.5, -2.0]).is_ok());
    }

    #[test]
    fn ensure_finite_reports_first_bad_index() {
        let res = ensure_finite(&[0.0, f64::NAN, f64::INFINITY]);
        assert_eq!(res, Err(DspError::NonFinite { index: 1 }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
