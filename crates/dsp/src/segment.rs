//! Multi-axis signal containers.
//!
//! The preprocessing output (§IV) is a two-dimensional **signal array** of
//! shape `(6, n)`: the six IMU axes (ax, ay, az, gx, gy, gz), each holding
//! `n` normalised samples (the paper sets `n = 60`).

use crate::error::DspError;

/// Number of IMU axes in a signal array (3 accelerometer + 3 gyroscope).
pub const AXIS_COUNT: usize = 6;

/// A dense `(axes, n)` array of preprocessed signal values.
///
/// Row `j` holds axis `j` in the paper's fixed order
/// `ax, ay, az, gx, gy, gz`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalArray {
    axes: Vec<Vec<f64>>,
    samples_per_axis: usize,
}

impl SignalArray {
    /// Builds a signal array from per-axis rows.
    ///
    /// # Errors
    ///
    /// * [`DspError::AxisLengthMismatch`] if rows differ in length.
    /// * [`DspError::TooShort`] if `rows` is empty or rows are empty.
    /// * [`DspError::NonFinite`] if any sample is NaN or infinite.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, DspError> {
        let Some(first) = rows.first() else {
            return Err(DspError::TooShort { needed: 1, got: 0 });
        };
        let n = first.len();
        if n == 0 {
            return Err(DspError::TooShort { needed: 1, got: 0 });
        }
        for row in &rows {
            if row.len() != n {
                return Err(DspError::AxisLengthMismatch {
                    expected: n,
                    got: row.len(),
                });
            }
            crate::error::ensure_finite(row)?;
        }
        Ok(SignalArray {
            axes: rows,
            samples_per_axis: n,
        })
    }

    /// Number of axes (rows).
    pub fn axis_count(&self) -> usize {
        self.axes.len()
    }

    /// Number of samples per axis (columns), the paper's `n`.
    pub fn samples_per_axis(&self) -> usize {
        self.samples_per_axis
    }

    /// The samples of axis `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn axis(&self, j: usize) -> &[f64] {
        &self.axes[j]
    }

    /// Iterator over the axis rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<f64>> {
        self.axes.iter()
    }

    /// Flattens the array row-major into a single vector of
    /// `axis_count × samples_per_axis` values.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.axes.len() * self.samples_per_axis);
        for row in &self.axes {
            out.extend_from_slice(row);
        }
        out
    }

    /// Returns a copy with every axis outside `mask` zeroed.
    ///
    /// Used by the Fig 11(a) axis-ablation experiment: `mask[j] == false`
    /// silences axis `j` while keeping the array shape the CNN expects.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.axis_count()`.
    pub fn with_axis_mask(&self, mask: &[bool]) -> SignalArray {
        assert_eq!(
            mask.len(),
            self.axes.len(),
            "mask length must equal axis count"
        );
        let axes = self
            .axes
            .iter()
            .zip(mask)
            .map(|(row, &keep)| {
                if keep {
                    row.clone()
                } else {
                    vec![0.0; row.len()]
                }
            })
            .collect();
        SignalArray {
            axes,
            samples_per_axis: self.samples_per_axis,
        }
    }
}

impl<'a> IntoIterator for &'a SignalArray {
    type Item = &'a Vec<f64>;
    type IntoIter = std::slice::Iter<'a, Vec<f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.axes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_array() -> SignalArray {
        SignalArray::new(vec![vec![0.0, 0.1, 0.2], vec![1.0, 1.1, 1.2]]).unwrap()
    }

    #[test]
    fn dimensions_are_reported() {
        let arr = sample_array();
        assert_eq!(arr.axis_count(), 2);
        assert_eq!(arr.samples_per_axis(), 3);
    }

    #[test]
    fn mismatched_rows_are_rejected() {
        let res = SignalArray::new(vec![vec![0.0, 1.0], vec![0.0]]);
        assert!(matches!(
            res,
            Err(DspError::AxisLengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(
            SignalArray::new(vec![]),
            Err(DspError::TooShort { .. })
        ));
        assert!(matches!(
            SignalArray::new(vec![vec![]]),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn nan_is_rejected() {
        let res = SignalArray::new(vec![vec![0.0, f64::NAN]]);
        assert!(matches!(res, Err(DspError::NonFinite { index: 1 })));
    }

    #[test]
    fn flatten_is_row_major() {
        let arr = sample_array();
        assert_eq!(arr.to_flat(), vec![0.0, 0.1, 0.2, 1.0, 1.1, 1.2]);
    }

    #[test]
    fn axis_mask_zeroes_excluded_rows() {
        let arr = sample_array();
        let masked = arr.with_axis_mask(&[true, false]);
        assert_eq!(masked.axis(0), arr.axis(0));
        assert_eq!(masked.axis(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mask length must equal axis count")]
    fn wrong_mask_length_panics() {
        sample_array().with_axis_mask(&[true]);
    }

    #[test]
    fn iteration_yields_all_axes() {
        let arr = sample_array();
        assert_eq!(arr.iter().count(), 2);
        assert_eq!((&arr).into_iter().count(), 2);
    }
}
