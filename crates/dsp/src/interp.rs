//! Linear interpolation and resampling.
//!
//! The gradient-array construction (§V.B) sign-splits each axis into
//! positive- and negative-direction gradient streams of *roughly* `n/2`
//! values and then linearly interpolates each stream so both directions
//! have exactly `n/2` values, giving the CNN a dimension-consistent input.

/// Linearly resamples `values` to exactly `target_len` points.
///
/// * Empty input yields `target_len` zeros (an axis may, in a degenerate
///   recording, have no gradients of one sign at all).
/// * A single value is replicated.
/// * Otherwise the output samples the piecewise-linear interpolant of
///   `values` at `target_len` evenly spaced positions, endpoints included.
///
/// ```
/// let out = mandipass_dsp::interp::resample_linear(&[0.0, 1.0], 3);
/// assert_eq!(out, vec![0.0, 0.5, 1.0]);
/// ```
pub fn resample_linear(values: &[f64], target_len: usize) -> Vec<f64> {
    if target_len == 0 {
        return Vec::new();
    }
    match values.len() {
        0 => vec![0.0; target_len],
        1 => vec![values[0]; target_len],
        len => {
            if target_len == 1 {
                return vec![values[0]];
            }
            let scale = (len - 1) as f64 / (target_len - 1) as f64;
            (0..target_len)
                .map(|i| {
                    let pos = i as f64 * scale;
                    let lo = pos.floor() as usize;
                    let hi = (lo + 1).min(len - 1);
                    let frac = pos - lo as f64;
                    values[lo] * (1.0 - frac) + values[hi] * frac
                })
                .collect()
        }
    }
}

/// Linear interpolation between `a` and `b` at parameter `t ∈ [0, 1]`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_lengths_match() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(resample_linear(&xs, 4), xs);
    }

    #[test]
    fn upsample_keeps_endpoints() {
        let out = resample_linear(&[0.0, 10.0], 11);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[10], 10.0);
        assert!((out[5] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let xs: Vec<f64> = (0..=10).map(f64::from).collect();
        let out = resample_linear(&xs, 5);
        assert_eq!(out.first(), Some(&0.0));
        assert_eq!(out.last(), Some(&10.0));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn empty_input_gives_zeros() {
        assert_eq!(resample_linear(&[], 4), vec![0.0; 4]);
    }

    #[test]
    fn single_value_is_replicated() {
        assert_eq!(resample_linear(&[7.0], 3), vec![7.0; 3]);
    }

    #[test]
    fn target_len_zero_gives_empty() {
        assert!(resample_linear(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn target_len_one_gives_first() {
        assert_eq!(resample_linear(&[3.0, 9.0], 1), vec![3.0]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn output_length_is_exact(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..50),
            target in 0usize..100,
        ) {
            prop_assert_eq!(resample_linear(&xs, target).len(), target);
        }

        #[test]
        fn output_within_input_bounds(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
            target in 1usize..100,
        ) {
            let (min, max) = crate::stats::min_max(&xs).unwrap();
            for v in resample_linear(&xs, target) {
                prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            }
        }

        #[test]
        fn monotone_input_stays_monotone(
            mut xs in proptest::collection::vec(-1e3f64..1e3, 2..50),
            target in 2usize..100,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let out = resample_linear(&xs, target);
            for w in out.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9);
            }
        }
    }
}
