//! Signal-processing substrate for the MandiPass reproduction.
//!
//! This crate implements every DSP primitive the paper's *signal
//! preprocessing* module (§IV) needs, plus the analysis tools used by the
//! feasibility study (§II) and the gradient-array construction (§V):
//!
//! * windowed statistics and the paper's vibration-start detection rule
//!   ([`detect`]),
//! * MAD-based outlier detection with two-step mean replacement
//!   ([`outlier`]),
//! * Butterworth IIR filters realised as cascaded biquads ([`filter`]),
//! * min–max normalisation ([`normalize`]),
//! * gradient computation and sign-split direction separation
//!   ([`gradient`]),
//! * linear interpolation / resampling ([`interp`]),
//! * a radix-2 FFT for spectrum inspection ([`fft`]),
//! * descriptive statistics ([`stats`]) and multi-axis signal containers
//!   ([`segment`]).
//!
//! # Example
//!
//! ```
//! use mandipass_dsp::filter::Butterworth;
//!
//! # fn main() -> Result<(), mandipass_dsp::DspError> {
//! // The paper's high-pass: 4th-order Butterworth, 20 Hz cutoff, 350 Hz rate.
//! let hp = Butterworth::highpass(4, 20.0, 350.0)?;
//! let noisy: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
//! let clean = hp.filtfilt(&noisy);
//! assert_eq!(clean.len(), noisy.len());
//! # Ok(())
//! # }
//! ```

pub mod detect;
pub mod error;
pub mod fft;
pub mod filter;
pub mod gradient;
pub mod interp;
pub mod normalize;
pub mod outlier;
pub mod segment;
pub mod stats;
pub mod window;

pub use error::DspError;
pub use segment::{SignalArray, AXIS_COUNT};
