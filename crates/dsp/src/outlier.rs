//! MAD-based outlier detection with two-step mean replacement (§IV).
//!
//! Hardware imperfections and body motion put extreme values into raw IMU
//! streams. The paper detects them with a median-absolute-deviation rule
//! and replaces each outlier with the mean of its two previous and two
//! subsequent *normal* values.

use crate::stats;

/// Scale factor that makes MAD a consistent estimator of σ for Gaussian
/// data (`1 / Φ⁻¹(3/4)`).
pub const MAD_GAUSSIAN_SCALE: f64 = 1.4826;

/// Default MAD multiplier beyond which a sample counts as an outlier.
pub const DEFAULT_MAD_THRESHOLD: f64 = 3.5;

/// Indices of samples whose deviation from the segment median exceeds
/// `threshold × (scaled MAD)`.
///
/// A segment with zero MAD (e.g. constant data with spikes) falls back to
/// flagging every sample that differs from the median at all, which keeps
/// the rule useful on degenerate segments.
///
/// ```
/// let mut seg = vec![1.0; 20];
/// seg[7] = 900.0;
/// let idx = mandipass_dsp::outlier::detect_outliers(&seg, 3.5);
/// assert_eq!(idx, vec![7]);
/// ```
pub fn detect_outliers(segment: &[f64], threshold: f64) -> Vec<usize> {
    if segment.is_empty() {
        return Vec::new();
    }
    let med = stats::median(segment);
    let mad = stats::mad(segment) * MAD_GAUSSIAN_SCALE;
    segment
        .iter()
        .enumerate()
        .filter(|&(_, &x)| {
            let dev = (x - med).abs();
            if mad > 0.0 {
                dev / mad > threshold
            } else {
                dev > 0.0
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Replaces each flagged outlier with the mean of up to two previous and
/// two subsequent **normal** (non-flagged) values — the paper's two-step
/// mean replacement.
///
/// When an outlier has no normal neighbours at all (every sample flagged),
/// it is replaced by the segment median as a safe fallback.
pub fn replace_outliers(segment: &mut [f64], outliers: &[usize]) {
    if segment.is_empty() || outliers.is_empty() {
        return;
    }
    let flagged: Vec<bool> = {
        let mut f = vec![false; segment.len()];
        for &i in outliers {
            if i < segment.len() {
                f[i] = true;
            }
        }
        f
    };
    // Work from a snapshot so replacements do not cascade into each other.
    let original = segment.to_vec();
    let median = stats::median(&original);
    for &i in outliers {
        if i >= segment.len() {
            continue;
        }
        let mut neighbours = Vec::with_capacity(4);
        // Two previous normal values.
        let mut found = 0;
        for j in (0..i).rev() {
            if !flagged[j] {
                neighbours.push(original[j]);
                found += 1;
                if found == 2 {
                    break;
                }
            }
        }
        // Two subsequent normal values.
        found = 0;
        for j in i + 1..original.len() {
            if !flagged[j] {
                neighbours.push(original[j]);
                found += 1;
                if found == 2 {
                    break;
                }
            }
        }
        segment[i] = if neighbours.is_empty() {
            median
        } else {
            stats::mean(&neighbours)
        };
    }
}

/// Convenience wrapper: detect with [`detect_outliers`] then repair with
/// [`replace_outliers`]. Returns the indices that were replaced.
pub fn clean_segment(segment: &mut [f64], threshold: f64) -> Vec<usize> {
    let outliers = detect_outliers(segment, threshold);
    replace_outliers(segment, &outliers);
    outliers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_spike() {
        let mut seg: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        seg[11] = 50.0;
        let idx = detect_outliers(&seg, DEFAULT_MAD_THRESHOLD);
        assert_eq!(idx, vec![11]);
    }

    #[test]
    fn detects_multiple_spikes_both_signs() {
        let mut seg: Vec<f64> = (0..40).map(|i| (i as f64 * 0.5).cos()).collect();
        seg[5] = 80.0;
        seg[20] = -80.0;
        let idx = detect_outliers(&seg, DEFAULT_MAD_THRESHOLD);
        assert_eq!(idx, vec![5, 20]);
    }

    #[test]
    fn clean_data_has_no_outliers() {
        let seg: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!(detect_outliers(&seg, DEFAULT_MAD_THRESHOLD).is_empty());
    }

    #[test]
    fn replacement_uses_two_step_mean() {
        let mut seg = vec![1.0, 2.0, 100.0, 4.0, 5.0];
        replace_outliers(&mut seg, &[2]);
        // mean of {1, 2, 4, 5} = 3
        assert_eq!(seg[2], 3.0);
    }

    #[test]
    fn replacement_skips_flagged_neighbours() {
        let mut seg = vec![1.0, 100.0, 100.0, 4.0, 5.0, 6.0];
        replace_outliers(&mut seg, &[1, 2]);
        // For index 1: previous normals {1}, next normals {4, 5} -> mean 10/3.
        assert!((seg[1] - 10.0 / 3.0).abs() < 1e-12);
        // For index 2: previous normals {1} (index 1 flagged), next {4, 5}.
        assert!((seg[2] - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replacement_at_boundaries() {
        let mut seg = vec![100.0, 2.0, 3.0, 4.0, 100.0];
        replace_outliers(&mut seg, &[0, 4]);
        assert_eq!(seg[0], 2.5); // mean of {2, 3}
        assert_eq!(seg[4], 3.5); // mean of {3, 4}
    }

    #[test]
    fn all_flagged_falls_back_to_median() {
        let mut seg = vec![10.0, 20.0, 30.0];
        replace_outliers(&mut seg, &[0, 1, 2]);
        assert_eq!(seg, vec![20.0, 20.0, 20.0]);
    }

    #[test]
    fn clean_segment_removes_spike_influence() {
        let mut seg: Vec<f64> = (0..60).map(|i| (i as f64 * 0.4).sin()).collect();
        seg[30] = 500.0;
        let before_max = seg.iter().cloned().fold(f64::MIN, f64::max);
        let replaced = clean_segment(&mut seg, DEFAULT_MAD_THRESHOLD);
        let after_max = seg.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(replaced, vec![30]);
        assert!(before_max > 100.0 && after_max < 2.0);
    }

    #[test]
    fn empty_segment_is_noop() {
        let mut seg: Vec<f64> = Vec::new();
        assert!(clean_segment(&mut seg, DEFAULT_MAD_THRESHOLD).is_empty());
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let mut seg = vec![1.0, 2.0, 3.0];
        replace_outliers(&mut seg, &[10]);
        assert_eq!(seg, vec![1.0, 2.0, 3.0]);
    }
}
