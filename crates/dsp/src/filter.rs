//! Butterworth IIR filters realised as cascaded second-order sections.
//!
//! The paper removes body-motion low-frequency components with a
//! **4th-order Butterworth high-pass at 20 Hz** (§IV). We design the filter
//! with the standard analog-prototype → bilinear-transform route and run it
//! as a cascade of biquads, optionally forward–backward (`filtfilt`) for
//! zero phase distortion.

use crate::error::DspError;

/// One second-order IIR section in direct form II transposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients `b0, b1, b2`.
    pub b: [f64; 3],
    /// Feedback coefficients `a1, a2` (with `a0` normalised to 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// Filters `input` through this section, returning the output.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        input
            .iter()
            .map(|&x| {
                let y = self.b[0] * x + s1;
                s1 = self.b[1] * x - self.a[0] * y + s2;
                s2 = self.b[2] * x - self.a[1] * y;
                y
            })
            .collect()
    }

    /// Magnitude response of the section at normalised angular frequency
    /// `w` (radians/sample).
    pub fn magnitude_at(&self, w: f64) -> f64 {
        use std::f64::consts::*;
        let _ = PI;
        let (c1, s1v) = (w.cos(), w.sin());
        let (c2, s2v) = ((2.0 * w).cos(), (2.0 * w).sin());
        let num_re = self.b[0] + self.b[1] * c1 + self.b[2] * c2;
        let num_im = -(self.b[1] * s1v + self.b[2] * s2v);
        let den_re = 1.0 + self.a[0] * c1 + self.a[1] * c2;
        let den_im = -(self.a[0] * s1v + self.a[1] * s2v);
        (num_re * num_re + num_im * num_im).sqrt() / (den_re * den_re + den_im * den_im).sqrt()
    }
}

/// Whether a [`Butterworth`] passes frequencies above or below its cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Attenuates below the cutoff.
    Highpass,
    /// Attenuates above the cutoff.
    Lowpass,
}

/// A Butterworth filter of even order, stored as cascaded biquads.
#[derive(Debug, Clone, PartialEq)]
pub struct Butterworth {
    sections: Vec<Biquad>,
    kind: FilterKind,
    order: usize,
    cutoff_hz: f64,
    sample_rate_hz: f64,
}

impl Butterworth {
    /// Designs a high-pass Butterworth filter.
    ///
    /// # Errors
    ///
    /// * [`DspError::InvalidOrder`] if `order` is zero or odd.
    /// * [`DspError::InvalidCutoff`] if `cutoff_hz` is outside
    ///   `(0, sample_rate_hz / 2)`.
    pub fn highpass(order: usize, cutoff_hz: f64, sample_rate_hz: f64) -> Result<Self, DspError> {
        Self::design(FilterKind::Highpass, order, cutoff_hz, sample_rate_hz)
    }

    /// Designs a low-pass Butterworth filter.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Butterworth::highpass`].
    pub fn lowpass(order: usize, cutoff_hz: f64, sample_rate_hz: f64) -> Result<Self, DspError> {
        Self::design(FilterKind::Lowpass, order, cutoff_hz, sample_rate_hz)
    }

    fn design(
        kind: FilterKind,
        order: usize,
        cutoff_hz: f64,
        sample_rate_hz: f64,
    ) -> Result<Self, DspError> {
        if !order.is_multiple_of(2) || order == 0 {
            return Err(DspError::InvalidOrder { order });
        }
        if cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0 || !cutoff_hz.is_finite() {
            return Err(DspError::InvalidCutoff {
                cutoff_hz,
                sample_rate_hz,
            });
        }
        // Pre-warped analog cutoff for the bilinear transform (T = 2 so that
        // the warping constant folds into `wc`).
        let wc = (std::f64::consts::PI * cutoff_hz / sample_rate_hz).tan();
        let n_sections = order / 2;
        let mut sections = Vec::with_capacity(n_sections);
        for k in 0..n_sections {
            // Butterworth pole-pair quality factor for section k.
            let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
            let q = 1.0 / (2.0 * theta.sin());
            sections.push(Self::bilinear_section(kind, wc, q));
        }
        Ok(Butterworth {
            sections,
            kind,
            order,
            cutoff_hz,
            sample_rate_hz,
        })
    }

    /// Bilinear transform of a second-order analog prototype section with
    /// cutoff `wc` (pre-warped, normalised) and quality factor `q`.
    fn bilinear_section(kind: FilterKind, wc: f64, q: f64) -> Biquad {
        let wc2 = wc * wc;
        let a0 = wc2 + wc / q + 1.0;
        match kind {
            FilterKind::Lowpass => Biquad {
                b: [wc2 / a0, 2.0 * wc2 / a0, wc2 / a0],
                a: [(2.0 * (wc2 - 1.0)) / a0, (wc2 - wc / q + 1.0) / a0],
            },
            FilterKind::Highpass => Biquad {
                b: [1.0 / a0, -2.0 / a0, 1.0 / a0],
                a: [(2.0 * (wc2 - 1.0)) / a0, (wc2 - wc / q + 1.0) / a0],
            },
        }
    }

    /// The filter order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The cutoff frequency in Hz.
    pub fn cutoff_hz(&self) -> f64 {
        self.cutoff_hz
    }

    /// The design sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Whether this is a high-pass or low-pass filter.
    pub fn kind(&self) -> FilterKind {
        self.kind
    }

    /// The second-order sections of the cascade.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Single-pass (causal) filtering.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut out = input.to_vec();
        for section in &self.sections {
            out = section.filter(&out);
        }
        out
    }

    /// Zero-phase forward–backward filtering.
    ///
    /// The effective magnitude response is the square of the single-pass
    /// response; the output has no phase distortion, which keeps the
    /// vibration waveform shape intact for the gradient step.
    pub fn filtfilt(&self, input: &[f64]) -> Vec<f64> {
        let forward = self.filter(input);
        let mut reversed: Vec<f64> = forward.into_iter().rev().collect();
        reversed = self.filter(&reversed);
        reversed.reverse();
        reversed
    }

    /// Cascade magnitude response at frequency `hz`.
    pub fn magnitude_at_hz(&self, hz: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * hz / self.sample_rate_hz;
        self.sections.iter().map(|s| s.magnitude_at(w)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 350.0;

    fn tone(hz: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * hz * i as f64 / FS).sin())
            .collect()
    }

    fn rms(xs: &[f64]) -> f64 {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn rejects_odd_or_zero_order() {
        assert!(matches!(
            Butterworth::highpass(0, 20.0, FS),
            Err(DspError::InvalidOrder { .. })
        ));
        assert!(matches!(
            Butterworth::highpass(3, 20.0, FS),
            Err(DspError::InvalidOrder { .. })
        ));
    }

    #[test]
    fn rejects_bad_cutoff() {
        assert!(matches!(
            Butterworth::highpass(4, 0.0, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
        assert!(matches!(
            Butterworth::highpass(4, 200.0, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
        assert!(matches!(
            Butterworth::highpass(4, f64::NAN, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
    }

    #[test]
    fn highpass_magnitude_is_half_power_at_cutoff() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        let mag = hp.magnitude_at_hz(20.0);
        assert!(
            (mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9,
            "got {mag}"
        );
    }

    #[test]
    fn highpass_passes_vocal_band_and_rejects_motion_band() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        // Body movements are mostly < 10 Hz; vocal fundamentals 100–200 Hz.
        assert!(hp.magnitude_at_hz(5.0) < 0.01);
        assert!(hp.magnitude_at_hz(120.0) > 0.99);
    }

    #[test]
    fn lowpass_mirrors_highpass_behaviour() {
        let lp = Butterworth::lowpass(4, 20.0, FS).unwrap();
        assert!(lp.magnitude_at_hz(5.0) > 0.99);
        assert!(lp.magnitude_at_hz(120.0) < 0.01);
    }

    #[test]
    fn time_domain_attenuation_matches_design() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        let low = tone(5.0, 2048);
        let high = tone(120.0, 2048);
        // Skip the transient head for the RMS measurement.
        let low_out = hp.filter(&low);
        let high_out = hp.filter(&high);
        assert!(
            rms(&low_out[512..]) < 0.02,
            "low tone leaked: {}",
            rms(&low_out[512..])
        );
        assert!(
            rms(&high_out[512..]) > 0.68,
            "high tone attenuated: {}",
            rms(&high_out[512..])
        );
    }

    #[test]
    fn filtfilt_is_zero_phase() {
        let hp = Butterworth::highpass(2, 10.0, FS).unwrap();
        let sig = tone(100.0, 4096);
        let out = hp.filtfilt(&sig);
        // Zero-phase: the filtered tone stays aligned with the input (high
        // correlation at zero lag).
        let mid = 2048;
        let dot: f64 = (mid - 256..mid + 256).map(|i| sig[i] * out[i]).sum();
        let norm: f64 = (mid - 256..mid + 256).map(|i| sig[i] * sig[i]).sum();
        assert!(dot / norm > 0.98, "correlation {}", dot / norm);
    }

    #[test]
    fn filter_is_linear() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        let a = tone(60.0, 512);
        let b = tone(90.0, 512);
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = hp.filter(&a);
        let fb = hp.filter(&b);
        let fsum = hp.filter(&sum);
        for i in 0..512 {
            assert!((fsum[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn filter_is_stable_on_impulse() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        let mut impulse = vec![0.0; 4096];
        impulse[0] = 1.0;
        let response = hp.filter(&impulse);
        // Tail must decay to (near) zero for a stable filter.
        let tail_max = response[3500..].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(tail_max < 1e-8, "tail {tail_max}");
    }

    #[test]
    fn dc_is_fully_blocked_by_highpass() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        let dc = vec![3.0; 1024];
        let out = hp.filter(&dc);
        assert!(out[900..].iter().all(|x| x.abs() < 1e-8));
    }

    #[test]
    fn accessors_report_design_parameters() {
        let hp = Butterworth::highpass(4, 20.0, FS).unwrap();
        assert_eq!(hp.order(), 4);
        assert_eq!(hp.cutoff_hz(), 20.0);
        assert_eq!(hp.sample_rate_hz(), FS);
        assert_eq!(hp.kind(), FilterKind::Highpass);
        assert_eq!(hp.sections().len(), 2);
    }
}
