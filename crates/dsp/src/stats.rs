//! Descriptive statistics used throughout the pipeline.
//!
//! These back both the vibration-start detector (windowed standard
//! deviation, §IV) and the statistical-feature study the paper uses to
//! motivate the deep extractor (§V.A: mean, median, variance, standard
//! deviation, upper quartile, lower quartile).

/// Arithmetic mean of `xs`. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(mandipass_dsp::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of `xs`. Returns `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of `xs`.
///
/// This is the statistic the paper thresholds to find the vibration start
/// (window std > 250 at a drastic onset).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of `xs`. Returns `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Lower (25 %) quartile of `xs`.
pub fn lower_quartile(xs: &[f64]) -> f64 {
    quantile(xs, 0.25)
}

/// Upper (75 %) quartile of `xs`.
pub fn upper_quartile(xs: &[f64]) -> f64 {
    quantile(xs, 0.75)
}

/// Linearly interpolated quantile `q ∈ [0, 1]` of `xs`.
///
/// Returns `0.0` for an empty slice. `q` is clamped into `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile input must be finite"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median absolute deviation (MAD) of `xs`: `median(|x - median(xs)|)`.
///
/// The paper's outlier processing (§IV) flags samples whose deviation from
/// the segment median exceeds a multiple of the MAD.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Minimum and maximum of `xs` in one pass.
///
/// Returns `None` for an empty slice.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let first = *xs.first()?;
    let mut min = first;
    let mut max = first;
    for &x in &xs[1..] {
        if x < min {
            min = x;
        }
        if x > max {
            max = x;
        }
    }
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // xs = [2, 4, 4, 4, 5, 5, 7, 9] has population variance 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quartiles_of_known_sequence() {
        let xs: Vec<f64> = (1..=5).map(f64::from).collect();
        assert_eq!(lower_quartile(&xs), 2.0);
        assert_eq!(upper_quartile(&xs), 4.0);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn mad_is_robust_to_single_outlier() {
        let mut xs = vec![1.0; 9];
        xs.push(1000.0);
        // Median stays 1, so MAD stays 0 despite the huge outlier.
        assert_eq!(mad(&xs), 0.0);
    }

    #[test]
    fn mad_of_spread_sequence() {
        // xs = [1..7]: median 4, deviations [3,2,1,0,1,2,3], MAD 2.
        let xs: Vec<f64> = (1..=7).map(f64::from).collect();
        assert_eq!(mad(&xs), 2.0);
    }

    #[test]
    fn min_max_single_pass() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]), Some((-1.0, 7.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 3.0);
    }
}
