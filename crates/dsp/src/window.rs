//! Fixed-size windowing with a stride, plus windowed statistics.
//!
//! The paper's vibration-start detector slides a window of **ten** samples
//! with a stride of **ten** samples over the accelerometer stream and
//! thresholds each window's standard deviation (§IV).

use crate::stats;

/// Iterator over `(start_index, window_slice)` pairs of fixed-size windows.
///
/// Windows that would run past the end of the signal are dropped (the paper
/// operates on complete windows only).
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    signal: &'a [f64],
    size: usize,
    stride: usize,
    pos: usize,
}

impl<'a> Windows<'a> {
    /// Creates a window iterator over `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is zero.
    pub fn new(signal: &'a [f64], size: usize, stride: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        assert!(stride > 0, "window stride must be positive");
        Windows {
            signal,
            size,
            stride,
            pos: 0,
        }
    }
}

impl<'a> Iterator for Windows<'a> {
    type Item = (usize, &'a [f64]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.size > self.signal.len() {
            return None;
        }
        let start = self.pos;
        let win = &self.signal[start..start + self.size];
        self.pos += self.stride;
        Some((start, win))
    }
}

/// Standard deviation of each complete window of `size` samples, advancing
/// by `stride` samples.
///
/// ```
/// let sig = vec![0.0; 25];
/// let stds = mandipass_dsp::window::windowed_std(&sig, 10, 10);
/// assert_eq!(stds.len(), 2); // windows at 0 and 10; 20.. is incomplete
/// assert!(stds.iter().all(|&(_, s)| s == 0.0));
/// ```
pub fn windowed_std(signal: &[f64], size: usize, stride: usize) -> Vec<(usize, f64)> {
    Windows::new(signal, size, stride)
        .map(|(start, win)| (start, stats::std_dev(win)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_expected_starts() {
        let sig: Vec<f64> = (0..35).map(f64::from).collect();
        let starts: Vec<usize> = Windows::new(&sig, 10, 10).map(|(s, _)| s).collect();
        assert_eq!(starts, vec![0, 10, 20]);
    }

    #[test]
    fn overlapping_windows() {
        let sig: Vec<f64> = (0..12).map(f64::from).collect();
        let starts: Vec<usize> = Windows::new(&sig, 4, 2).map(|(s, _)| s).collect();
        assert_eq!(starts, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn short_signal_yields_no_windows() {
        let sig = [1.0, 2.0];
        assert_eq!(Windows::new(&sig, 10, 10).count(), 0);
    }

    #[test]
    fn windowed_std_detects_burst() {
        // Quiet for 20 samples, then an alternating burst.
        let mut sig = vec![0.0; 20];
        for i in 0..20 {
            sig.push(if i % 2 == 0 { 500.0 } else { -500.0 });
        }
        let stds = windowed_std(&sig, 10, 10);
        assert_eq!(stds.len(), 4);
        assert!(stds[0].1 < 1.0 && stds[1].1 < 1.0);
        assert!(stds[2].1 > 250.0 && stds[3].1 > 250.0);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_size_panics() {
        let _ = Windows::new(&[1.0], 0, 1);
    }

    #[test]
    #[should_panic(expected = "window stride must be positive")]
    fn zero_stride_panics() {
        let _ = Windows::new(&[1.0], 1, 0);
    }
}
