//! Gradient computation and direction separation (§V.B, Eq. 8).
//!
//! The two-phase vibration model (Eq. 6) predicts *different* biometric
//! content in the positive- and negative-direction vibration phases
//! (`c1 ≠ c2`, `F_P(0) ≠ F_N(0)`). The paper therefore computes per-axis
//! gradients and splits them by sign before feeding each direction into its
//! own CNN branch.

use crate::interp::resample_linear;

/// Computes the gradients of `segment` per Eq. 8: the `i`-th gradient is
/// `(v[i+1] − v[i]) / |t[i+1] − t[i]|` with the time interval normalised to
/// 1 for uniformly sampled data, yielding `segment.len() − 1` values.
///
/// ```
/// let g = mandipass_dsp::gradient::gradients(&[0.0, 1.0, 0.5]);
/// assert_eq!(g, vec![1.0, -0.5]);
/// ```
pub fn gradients(segment: &[f64]) -> Vec<f64> {
    segment.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Gradients of a non-uniformly sampled segment: `dt[i]` is the (absolute)
/// interval between samples `i` and `i + 1`, normalised by the caller.
///
/// Intervals of zero are treated as 1 to keep the result finite (a
/// duplicated timestamp is a sensor artefact, not a real infinite slope).
///
/// # Panics
///
/// Panics if `dt.len() + 1 != segment.len()`.
pub fn gradients_with_dt(segment: &[f64], dt: &[f64]) -> Vec<f64> {
    assert_eq!(
        dt.len() + 1,
        segment.len(),
        "dt must have exactly one fewer element than segment"
    );
    segment
        .windows(2)
        .zip(dt)
        .map(|(w, &d)| {
            let d = d.abs();
            if d == 0.0 {
                w[1] - w[0]
            } else {
                (w[1] - w[0]) / d
            }
        })
        .collect()
}

/// Gradients split by sign into `(positive, negative)` streams.
///
/// Gradients `≥ 0` go to the positive direction, the rest to the negative
/// direction — the paper's exact rule. Order within each stream is
/// preserved.
pub fn split_by_sign(grads: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut pos = Vec::with_capacity(grads.len() / 2 + 1);
    let mut neg = Vec::with_capacity(grads.len() / 2 + 1);
    for &g in grads {
        if g >= 0.0 {
            pos.push(g);
        } else {
            neg.push(g);
        }
    }
    (pos, neg)
}

/// Full §V.B direction separation for one axis: gradients, sign split, and
/// linear interpolation of both streams to exactly `half_n` values each.
///
/// Returns `(positive, negative)`, each of length `half_n`.
pub fn directional_gradients(segment: &[f64], half_n: usize) -> (Vec<f64>, Vec<f64>) {
    let grads = gradients(segment);
    let (pos, neg) = split_by_sign(&grads);
    (resample_linear(&pos, half_n), resample_linear(&neg, half_n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradients_of_linear_ramp_are_constant() {
        let seg: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let g = gradients(&seg);
        assert_eq!(g.len(), 9);
        assert!(g.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn gradients_len_is_input_minus_one() {
        assert_eq!(gradients(&[1.0, 2.0, 3.0, 4.0]).len(), 3);
        assert!(gradients(&[1.0]).is_empty());
        assert!(gradients(&[]).is_empty());
    }

    #[test]
    fn gradients_with_dt_scales_by_interval() {
        let seg = [0.0, 2.0, 2.0];
        let dt = [0.5, 2.0];
        assert_eq!(gradients_with_dt(&seg, &dt), vec![4.0, 0.0]);
    }

    #[test]
    fn gradients_with_zero_dt_stays_finite() {
        let seg = [0.0, 3.0];
        let dt = [0.0];
        assert_eq!(gradients_with_dt(&seg, &dt), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "dt must have exactly one fewer element")]
    fn gradients_with_mismatched_dt_panics() {
        let _ = gradients_with_dt(&[1.0, 2.0], &[1.0, 1.0]);
    }

    #[test]
    fn split_partitions_all_gradients() {
        let grads = [1.0, -2.0, 0.0, 3.0, -0.5];
        let (pos, neg) = split_by_sign(&grads);
        assert_eq!(pos, vec![1.0, 0.0, 3.0]); // zero goes positive
        assert_eq!(neg, vec![-2.0, -0.5]);
        assert_eq!(pos.len() + neg.len(), grads.len());
    }

    #[test]
    fn alternating_signal_splits_evenly() {
        // n = 61 samples alternating => 60 gradients, 30 of each sign.
        let seg: Vec<f64> = (0..61)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let (pos, neg) = split_by_sign(&gradients(&seg));
        assert_eq!(pos.len(), 30);
        assert_eq!(neg.len(), 30);
    }

    #[test]
    fn directional_gradients_have_requested_length() {
        let seg: Vec<f64> = (0..60).map(|i| (i as f64 * 0.9).sin()).collect();
        let (pos, neg) = directional_gradients(&seg, 30);
        assert_eq!(pos.len(), 30);
        assert_eq!(neg.len(), 30);
        assert!(pos.iter().all(|&g| g >= 0.0));
        assert!(neg.iter().all(|&g| g < 0.0));
    }

    #[test]
    fn monotone_segment_yields_zero_padded_negative_stream() {
        let seg: Vec<f64> = (0..30).map(f64::from).collect();
        let (pos, neg) = directional_gradients(&seg, 15);
        assert!(pos.iter().all(|&g| g == 1.0));
        // No negative gradients exist; interpolation of an empty stream
        // must produce zeros, not NaNs.
        assert_eq!(neg, vec![0.0; 15]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn split_is_a_partition(grads in proptest::collection::vec(-1e3f64..1e3, 0..200)) {
            let (pos, neg) = split_by_sign(&grads);
            prop_assert_eq!(pos.len() + neg.len(), grads.len());
            prop_assert!(pos.iter().all(|&g| g >= 0.0));
            prop_assert!(neg.iter().all(|&g| g < 0.0));
        }

        #[test]
        fn directional_output_is_finite_and_sized(
            seg in proptest::collection::vec(-1e3f64..1e3, 0..120),
            half in 1usize..60,
        ) {
            let (pos, neg) = directional_gradients(&seg, half);
            prop_assert_eq!(pos.len(), half);
            prop_assert_eq!(neg.len(), half);
            prop_assert!(pos.iter().chain(&neg).all(|g| g.is_finite()));
        }

        #[test]
        fn gradient_sum_telescopes(seg in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let g = gradients(&seg);
            let total: f64 = g.iter().sum();
            let expected = seg.last().unwrap() - seg.first().unwrap();
            prop_assert!((total - expected).abs() < 1e-6);
        }
    }
}
