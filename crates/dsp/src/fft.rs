//! Radix-2 FFT for spectrum inspection.
//!
//! Used by the feasibility analysis (inspecting the vibration spectrum the
//! §II model predicts) and by the acoustic baselines (SkullConduct /
//! EarEcho feature extraction).

use crate::error::DspError;

/// A complex number as a `(re, im)` pair — all this crate needs.
pub type Complex = (f64, f64);

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] when `data.len()` is not a power of
/// two (zero-length counts as invalid).
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut cur = (1.0, 0.0);
            for k in 0..len / 2 {
                let (a_re, a_im) = data[start + k];
                let (b_re, b_im) = data[start + k + len / 2];
                let t_re = b_re * cur.0 - b_im * cur.1;
                let t_im = b_re * cur.1 + b_im * cur.0;
                data[start + k] = (a_re + t_re, a_im + t_im);
                data[start + k + len / 2] = (a_re - t_re, a_im - t_im);
                cur = (cur.0 * w_re - cur.1 * w_im, cur.0 * w_im + cur.1 * w_re);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// FFT of a real signal, zero-padded up to the next power of two.
///
/// Returns the full complex spectrum (length = padded size).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len().max(1).next_power_of_two();
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    data.resize(n, (0.0, 0.0));
    fft_in_place(&mut data).expect("padded length is a power of two");
    data
}

/// One-sided magnitude spectrum of a real signal with the frequency (Hz) of
/// each bin: `(freq_hz, magnitude)` pairs for bins `0 ..= N/2`.
pub fn magnitude_spectrum(signal: &[f64], sample_rate_hz: f64) -> Vec<(f64, f64)> {
    let spec = fft_real(signal);
    let n = spec.len();
    spec.iter()
        .take(n / 2 + 1)
        .enumerate()
        .map(|(k, &(re, im))| {
            (
                k as f64 * sample_rate_hz / n as f64,
                (re * re + im * im).sqrt(),
            )
        })
        .collect()
}

/// Frequency (Hz) of the largest non-DC magnitude bin.
///
/// Returns `None` when the signal is empty or shorter than two samples.
pub fn dominant_frequency(signal: &[f64], sample_rate_hz: f64) -> Option<f64> {
    if signal.len() < 2 {
        return None;
    }
    magnitude_spectrum(signal, sample_rate_hz)
        .into_iter()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("magnitudes are finite"))
        .map(|(f, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        assert_eq!(
            fft_in_place(&mut data),
            Err(DspError::NotPowerOfTwo { len: 12 })
        );
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft_in_place(&mut data).unwrap();
        for (re, im) in data {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let fs = 1024.0;
        let sig: Vec<f64> = (0..1024)
            .map(|i| (2.0 * std::f64::consts::PI * 64.0 * i as f64 / fs).sin())
            .collect();
        let dom = dominant_frequency(&sig, fs).unwrap();
        assert!((dom - 64.0).abs() < 1.0, "dominant {dom}");
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let sig: Vec<f64> = (0..256)
            .map(|i| ((i * 37 % 97) as f64 / 97.0) - 0.5)
            .collect();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let spec = fft_real(&sig);
        let freq_energy: f64 =
            spec.iter().map(|(re, im)| re * re + im * im).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let sig = vec![2.0; 64];
        let spec = magnitude_spectrum(&sig, 64.0);
        assert!((spec[0].1 - 128.0).abs() < 1e-9);
        assert!(spec[1..].iter().all(|&(_, m)| m < 1e-9));
    }

    #[test]
    fn dominant_frequency_of_tiny_signal_is_none() {
        assert_eq!(dominant_frequency(&[1.0], 100.0), None);
        assert_eq!(dominant_frequency(&[], 100.0), None);
    }

    #[test]
    fn zero_padding_keeps_peak_location() {
        // 300 samples at 100 Hz tone, fs 1000 -> padded to 512.
        let fs = 1000.0;
        let sig: Vec<f64> = (0..300)
            .map(|i| (2.0 * std::f64::consts::PI * 100.0 * i as f64 / fs).sin())
            .collect();
        let dom = dominant_frequency(&sig, fs).unwrap();
        assert!((dom - 100.0).abs() < 5.0, "dominant {dom}");
    }
}
