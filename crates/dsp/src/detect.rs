//! Vibration-start detection and segmentation (§IV of the paper).
//!
//! The detector divides the accelerometer stream into non-overlapping
//! windows of ten samples, computes each window's standard deviation, and
//! declares the vibration to start at the first window whose standard
//! deviation exceeds a *start* threshold while the following windows stay
//! above a *sustain* threshold. The timestamp of that window's first sample
//! is the vibration start; `n` samples from there form the segment.

use crate::error::{ensure_finite, DspError};
use crate::window::windowed_std;

/// Configuration of the vibration-start detection rule.
///
/// The defaults are the paper's values: window size 10, stride 10, start
/// threshold 250, sustain threshold 100, and two sustain windows checked.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Number of samples per window.
    pub window: usize,
    /// Stride between consecutive windows, in samples.
    pub stride: usize,
    /// A window whose standard deviation exceeds this starts a candidate
    /// vibration event.
    pub start_threshold: f64,
    /// Standard deviation the subsequent windows must not fall below.
    pub sustain_threshold: f64,
    /// How many subsequent windows must satisfy the sustain threshold.
    pub sustain_windows: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: 10,
            stride: 10,
            start_threshold: 250.0,
            sustain_threshold: 100.0,
            sustain_windows: 2,
        }
    }
}

/// Finds the start index of the vibration event in `signal`.
///
/// # Errors
///
/// * [`DspError::NonFinite`] if the signal contains NaN or ±∞.
/// * [`DspError::TooShort`] if the signal holds fewer than one window.
/// * [`DspError::VibrationNotFound`] if no window satisfies the rule.
///
/// ```
/// use mandipass_dsp::detect::{detect_vibration_start, DetectorConfig};
///
/// let mut sig = vec![0.0; 40];
/// sig.extend((0..60).map(|i| if i % 2 == 0 { 400.0 } else { -400.0 }));
/// let start = detect_vibration_start(&sig, &DetectorConfig::default()).unwrap();
/// assert_eq!(start, 40);
/// ```
pub fn detect_vibration_start(signal: &[f64], config: &DetectorConfig) -> Result<usize, DspError> {
    ensure_finite(signal)?;
    if signal.len() < config.window {
        return Err(DspError::TooShort {
            needed: config.window,
            got: signal.len(),
        });
    }
    let stds = windowed_std(signal, config.window, config.stride);
    for (i, &(start, sd)) in stds.iter().enumerate() {
        if sd <= config.start_threshold {
            continue;
        }
        let sustained = stds[i + 1..]
            .iter()
            .take(config.sustain_windows)
            .all(|&(_, s)| s >= config.sustain_threshold);
        // A start window close to the end of the recording has fewer than
        // `sustain_windows` followers; `all` over the shorter run is the
        // paper's behaviour (it only checks windows that exist).
        if sustained {
            return Ok(start);
        }
    }
    Err(DspError::VibrationNotFound)
}

/// Detects the vibration start in `trigger` and extracts the `n`-sample
/// segment beginning there from every axis in `axes`.
///
/// `trigger` is typically one accelerometer axis (the paper uses the
/// accelerometer for detection); `axes` are all six IMU axes.
///
/// # Errors
///
/// Propagates detection errors, and returns [`DspError::TooShort`] when any
/// axis has fewer than `start + n` samples.
pub fn segment_axes(
    trigger: &[f64],
    axes: &[&[f64]],
    n: usize,
    config: &DetectorConfig,
) -> Result<Vec<Vec<f64>>, DspError> {
    let start = detect_vibration_start(trigger, config)?;
    let mut out = Vec::with_capacity(axes.len());
    for axis in axes {
        if axis.len() < start + n {
            return Err(DspError::TooShort {
                needed: start + n,
                got: axis.len(),
            });
        }
        out.push(axis[start..start + n].to_vec());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_then_burst(quiet: usize, burst: usize, amp: f64) -> Vec<f64> {
        let mut sig = vec![0.0; quiet];
        sig.extend((0..burst).map(|i| if i % 2 == 0 { amp } else { -amp }));
        sig
    }

    #[test]
    fn detects_start_at_window_boundary() {
        let sig = quiet_then_burst(50, 60, 400.0);
        let start = detect_vibration_start(&sig, &DetectorConfig::default()).unwrap();
        assert_eq!(start, 50);
    }

    #[test]
    fn start_mid_window_snaps_to_window_start() {
        // Burst begins at sample 45: the window [40, 50) already has a large
        // std, so the detector reports 40 — the first sample of that window,
        // exactly as the paper specifies.
        let sig = quiet_then_burst(45, 60, 400.0);
        let start = detect_vibration_start(&sig, &DetectorConfig::default()).unwrap();
        assert_eq!(start, 40);
    }

    #[test]
    fn transient_spike_without_sustain_is_ignored() {
        // One loud window followed by silence: the sustain check fails there,
        // but a later genuine burst is found.
        let mut sig = vec![0.0; 10];
        sig.extend(quiet_then_burst(0, 10, 400.0)); // windows: [10,20) loud
        sig.extend(vec![0.0; 40]); // silence => sustain fails
        sig.extend(quiet_then_burst(0, 40, 400.0));
        let start = detect_vibration_start(&sig, &DetectorConfig::default()).unwrap();
        assert_eq!(start, 60);
    }

    #[test]
    fn all_quiet_is_not_found() {
        let sig = vec![0.0; 200];
        assert_eq!(
            detect_vibration_start(&sig, &DetectorConfig::default()),
            Err(DspError::VibrationNotFound)
        );
    }

    #[test]
    fn short_signal_errors() {
        let sig = vec![0.0; 5];
        assert!(matches!(
            detect_vibration_start(&sig, &DetectorConfig::default()),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn nan_is_rejected() {
        let mut sig = quiet_then_burst(20, 40, 400.0);
        sig[3] = f64::NAN;
        assert!(matches!(
            detect_vibration_start(&sig, &DetectorConfig::default()),
            Err(DspError::NonFinite { index: 3 })
        ));
    }

    #[test]
    fn segment_axes_extracts_n_samples_per_axis() {
        let trigger = quiet_then_burst(30, 100, 400.0);
        let other: Vec<f64> = (0..130).map(f64::from).collect();
        let axes = [trigger.as_slice(), other.as_slice()];
        let segs = segment_axes(&trigger, &axes, 60, &DetectorConfig::default()).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), 60);
        assert_eq!(segs[1][0], 30.0); // starts at the detected index
    }

    #[test]
    fn segment_axes_errors_when_tail_is_short() {
        let trigger = quiet_then_burst(30, 40, 400.0); // only 70 samples
        let axes = [trigger.as_slice()];
        assert!(matches!(
            segment_axes(&trigger, &axes, 60, &DetectorConfig::default()),
            Err(DspError::TooShort {
                needed: 90,
                got: 70
            })
        ));
    }
}
