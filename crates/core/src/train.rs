//! Verification-service-provider training (§V.C).
//!
//! Users never contribute training data: the VSP (e.g. the earphone
//! manufacturer) hires people, collects labelled signal arrays, and trains
//! the biometric extractor with cross-entropy and Adam. The trained
//! extractor ships on the earphone and extracts MandiblePrints for anyone.

use mandipass_imu_sim::{Condition, Recorder, UserProfile};
use mandipass_nn::data::Dataset;
use mandipass_nn::layer::Layer;
use mandipass_nn::optim::{Adam, Optimizer};
use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;

use crate::config::PipelineConfig;
use crate::error::MandiPassError;
use crate::extractor::{BiometricExtractor, ExtractorConfig};
use crate::gradient_array::GradientArray;
use crate::preprocess::preprocess;

/// Training hyper-parameters for the VSP procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Seconds of usable vibration signal collected per hired person
    /// (Fig. 11(b) sweeps 10–60 s). Each probe contributes `n / fs`
    /// seconds (≈ 0.17 s at the defaults), so 24 s ≈ 140 probes.
    pub seconds_per_person: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Embedding (MandiblePrint) dimensionality.
    pub embedding_dim: usize,
    /// Convolution channel plan.
    pub channels: [usize; 3],
    /// Pipeline configuration used to preprocess the recordings.
    pub pipeline: PipelineConfig,
    /// Seed controlling recording sessions, shuffling and weights.
    pub seed: u64,
    /// Whether to build the paper's two-branch extractor (`false` builds
    /// the single-branch ablation comparator).
    pub two_branch: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            seconds_per_person: 24.0,
            epochs: 8,
            batch_size: 32,
            learning_rate: 1e-3,
            embedding_dim: 512,
            channels: [8, 16, 32],
            pipeline: PipelineConfig::default(),
            seed: 0x7672_7370,
            two_branch: true,
        }
    }
}

impl TrainingConfig {
    /// A deliberately tiny configuration for unit tests (fastest;
    /// genuine/impostor separation is weak at this scale).
    pub fn fast_demo() -> Self {
        TrainingConfig {
            seconds_per_person: 3.0,
            epochs: 3,
            batch_size: 16,
            learning_rate: 2e-3,
            embedding_dim: 64,
            channels: [4, 8, 8],
            ..Self::default()
        }
    }

    /// A configuration for the runnable examples: trains in a minute or
    /// two on one core and separates users reliably.
    pub fn example_demo() -> Self {
        TrainingConfig {
            seconds_per_person: 8.0,
            epochs: 8,
            batch_size: 32,
            learning_rate: 1e-3,
            embedding_dim: 128,
            channels: [8, 16, 32],
            ..Self::default()
        }
    }

    /// Number of probes recorded per hired person.
    pub fn probes_per_person(&self) -> usize {
        let seconds_per_probe =
            self.pipeline.n as f64 / mandipass_imu_sim::ImuModel::default().sample_rate_hz;
        ((self.seconds_per_person / seconds_per_probe).round() as usize).max(2)
    }
}

/// The VSP training procedure: synthesise labelled probes from the hired
/// cohort, preprocess them, and fit the extractor.
#[derive(Debug, Clone)]
pub struct VspTrainer {
    config: TrainingConfig,
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch.
    pub loss: f32,
    /// Mean training-batch accuracy over the epoch.
    pub accuracy: f64,
}

impl VspTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainingConfig) -> Self {
        VspTrainer { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Builds the labelled gradient-array dataset for the hired cohort.
    /// Probes whose preprocessing fails (e.g. a rare detection miss) are
    /// skipped, mirroring a VSP discarding bad collections.
    pub fn build_dataset(&self, hired: &[&UserProfile], recorder: &Recorder) -> Dataset {
        let half_n = self.config.pipeline.half_n();
        let probes = self.config.probes_per_person();
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (label, user) in hired.iter().enumerate() {
            for s in 0..probes {
                let session = self.config.seed ^ ((s as u64) << 20) ^ 0x7472_6169_6e00;
                // Hired-person collections are not laboratory-sterile:
                // people hum at slightly different tones and re-seat the
                // earphone between takes. A modest condition mix in the
                // training corpus reflects that and teaches the extractor
                // the same nuisance invariances the paper's real data did.
                let condition = match s % 10 {
                    6 => Condition::Orientation(90),
                    7 => Condition::ToneHigh,
                    8 => Condition::ToneLow,
                    9 => Condition::Orientation(90 * ((s / 10 % 4) as i32)),
                    _ => Condition::Normal,
                };
                let rec = recorder.record(user, condition, session);
                let Ok(array) = preprocess(&rec, &self.config.pipeline) else {
                    continue;
                };
                let Ok(grad) = GradientArray::from_signal_array(&array, half_n) else {
                    continue;
                };
                features.push(grad.to_f32());
                labels.push(label);
            }
        }
        Dataset::new(features, labels)
    }

    /// Trains an extractor on the hired cohort and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::InvalidConfig`] when fewer than two hired
    /// people are provided or the derived extractor configuration is
    /// invalid, and [`MandiPassError::NoEnrolmentData`] when no probe
    /// survives preprocessing.
    pub fn train(
        &self,
        hired: &[UserProfile],
        recorder: &Recorder,
    ) -> Result<BiometricExtractor, MandiPassError> {
        let refs: Vec<&UserProfile> = hired.iter().collect();
        self.train_refs(&refs, recorder).map(|(ex, _)| ex)
    }

    /// Like [`VspTrainer::train`] but takes references and also returns
    /// the per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VspTrainer::train`].
    pub fn train_refs(
        &self,
        hired: &[&UserProfile],
        recorder: &Recorder,
    ) -> Result<(BiometricExtractor, Vec<EpochStats>), MandiPassError> {
        if hired.len() < 2 {
            return Err(MandiPassError::InvalidConfig {
                reason: "training requires at least two hired people".to_string(),
            });
        }
        let mut dataset = self.build_dataset(hired, recorder);
        if dataset.is_empty() {
            return Err(MandiPassError::NoEnrolmentData);
        }
        let extractor_config = ExtractorConfig {
            axes: 6,
            half_n: self.config.pipeline.half_n(),
            channels: self.config.channels,
            embedding_dim: self.config.embedding_dim,
            classes: hired.len(),
            seed: self.config.seed ^ 0x6e6e,
            two_branch: self.config.two_branch,
        };
        let mut extractor = BiometricExtractor::new(extractor_config)?;
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x7368_7566);
        let shape = [2usize, 6, self.config.pipeline.half_n()];
        let mut stats = Vec::with_capacity(self.config.epochs);
        let telemetry_on = mandipass_telemetry::enabled();
        for _ in 0..self.config.epochs {
            let _span = mandipass_telemetry::span("train_epoch");
            dataset.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut grad_norm_sum = 0.0f64;
            let mut batches = 0usize;
            for (input, labels) in dataset.batches(self.config.batch_size, &shape) {
                let (loss, acc) = extractor.train_batch(&input, &labels);
                if telemetry_on {
                    grad_norm_sum += grad_l2_norm(&mut extractor);
                }
                adam.step(&mut extractor.params());
                loss_sum += f64::from(loss);
                acc_sum += acc;
                batches += 1;
            }
            let epoch = EpochStats {
                loss: (loss_sum / batches.max(1) as f64) as f32,
                accuracy: acc_sum / batches.max(1) as f64,
            };
            if telemetry_on {
                mandipass_telemetry::counter!("train.epochs").inc();
                mandipass_telemetry::histogram!("train.epoch_loss").observe(f64::from(epoch.loss));
                mandipass_telemetry::histogram!("train.epoch_accuracy").observe(epoch.accuracy);
                mandipass_telemetry::histogram!("train.grad_norm")
                    .observe(grad_norm_sum / batches.max(1) as f64);
            }
            stats.push(epoch);
        }
        Ok((extractor, stats))
    }
}

/// L2 norm over every parameter gradient of the extractor — the standard
/// divergence/vanishing indicator, recorded per epoch when telemetry is
/// enabled.
fn grad_l2_norm(extractor: &mut BiometricExtractor) -> f64 {
    let mut sq = 0.0f64;
    for p in extractor.params() {
        for &g in p.grad.data() {
            sq += f64::from(g) * f64::from(g);
        }
    }
    sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_imu_sim::Population;

    #[test]
    fn probes_per_person_scales_with_seconds() {
        let mut c = TrainingConfig::fast_demo();
        c.seconds_per_person = 10.0;
        let ten = c.probes_per_person();
        c.seconds_per_person = 60.0;
        let sixty = c.probes_per_person();
        assert!(sixty > 5 * ten);
        // 60 s at 60/350 s per probe = 350 probes.
        assert_eq!(sixty, 350);
    }

    #[test]
    fn dataset_is_labelled_per_user() {
        let pop = Population::generate(3, 31);
        let trainer = VspTrainer::new(TrainingConfig {
            seconds_per_person: 1.0,
            ..TrainingConfig::fast_demo()
        });
        let refs: Vec<_> = pop.users().iter().collect();
        let ds = trainer.build_dataset(&refs, &Recorder::default());
        assert!(ds.len() >= 3 * 2);
        assert_eq!(ds.class_count(), 3);
        // Features have the CNN input size: 2 × 6 × 30.
        assert_eq!(ds.features[0].len(), 360);
    }

    #[test]
    fn training_learns_to_separate_users() {
        let pop = Population::generate(3, 32);
        let trainer = VspTrainer::new(TrainingConfig {
            seconds_per_person: 2.5,
            epochs: 6,
            ..TrainingConfig::fast_demo()
        });
        let refs: Vec<_> = pop.users().iter().collect();
        let (_, stats) = trainer.train_refs(&refs, &Recorder::default()).unwrap();
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(
            last.accuracy > first.accuracy || last.accuracy > 0.9,
            "accuracy did not improve: {first:?} -> {last:?}"
        );
        assert!(
            last.loss < first.loss,
            "loss did not drop: {first:?} -> {last:?}"
        );
    }

    #[test]
    fn too_few_hired_people_is_rejected() {
        let pop = Population::generate(1, 33);
        let trainer = VspTrainer::new(TrainingConfig::fast_demo());
        assert!(matches!(
            trainer.train(&pop.users()[..1], &Recorder::default()),
            Err(MandiPassError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let c = TrainingConfig::default();
        assert_eq!(c.embedding_dim, 512);
        assert_eq!(c.channels, [8, 16, 32]);
        assert_eq!(c.pipeline.n, 60);
    }
}
