//! The four §VI attack models.
//!
//! * **Zero-effort**: the attacker steals the earphone but does not know
//!   a vibration is required — no hum, so detection finds nothing.
//! * **Vibration-aware**: the attacker knows the principle and hums into
//!   the stolen earphone; their own mandible produces the print.
//! * **Impersonation**: the attacker first observes the victim and mimics
//!   the voicing manner (tone, pace) — but not the mandible physiology.
//! * **Replay**: the attacker steals the cancelable template from the
//!   enclave and exhibits it; the defence is matrix revocation.

use mandipass_imu_sim::population::UserProfile;
use mandipass_imu_sim::{Condition, Recorder, Recording};
use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

/// Builds a zero-effort "probe": the attacker wears the earphone but
/// produces no vibration, so the IMU sees only bias and noise. The
/// returned recording must make the §IV detector fail.
pub fn zero_effort_probe(attacker: &UserProfile, recorder: &Recorder, seed: u64) -> Recording {
    // An attacker who does not hum is a recording whose voicing force is
    // zero: reuse the recorder with a silent vocal profile.
    let mut silent = attacker.clone();
    silent.vocal.force_positive = 1e-9;
    silent.vocal.force_negative = 1e-9;
    silent.vocal.harmonics = vec![0.0; silent.vocal.harmonics.len()];
    recorder.record(&silent, Condition::Normal, seed)
}

/// Builds a vibration-aware probe: the attacker simply hums naturally
/// into the stolen earphone.
pub fn vibration_aware_probe(attacker: &UserProfile, recorder: &Recorder, seed: u64) -> Recording {
    recorder.record(attacker, Condition::Normal, seed)
}

/// Builds an impersonation probe: the attacker has observed the victim's
/// voicing manner and mimics the audible traits — fundamental frequency,
/// loudness, pacing — within human mimicry error. The mandible
/// physiology, coupling geometry and propagation remain the attacker's
/// own: those cannot be observed or imitated. Untrained pitch matching
/// by ear lands within roughly a semitone (~6-8 %), which bounds the
/// mimicry error.
pub fn impersonation_probe(
    attacker: &UserProfile,
    victim: &UserProfile,
    recorder: &Recorder,
    seed: u64,
) -> Recording {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006d_696d_6963);
    let mut mimic = attacker.clone();
    // Trained mimicry gets the audible parameters close but not exact.
    let err = |rng: &mut StdRng| 1.0 + rng.gen_range(-0.07..0.07);
    mimic.vocal.f0_hz = victim.vocal.f0_hz * err(&mut rng);
    mimic.vocal.force_positive = victim.vocal.force_positive * err(&mut rng);
    mimic.vocal.force_negative = victim.vocal.force_negative * err(&mut rng);
    mimic.vocal.attack_seconds = victim.vocal.attack_seconds * err(&mut rng);
    mimic.vocal.positive_phase_fraction = victim.vocal.positive_phase_fraction;
    // Harmonic timbre partially observable from the victim's voice.
    mimic.vocal.harmonics = victim
        .vocal
        .harmonics
        .iter()
        .map(|&h| h * (1.0 + rng.gen_range(-0.1..0.1)))
        .collect();
    recorder.record(&mimic, Condition::Normal, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_dsp::detect::{detect_vibration_start, DetectorConfig};
    use mandipass_imu_sim::Population;

    #[test]
    fn zero_effort_probe_has_no_detectable_vibration() {
        let pop = Population::generate(2, 51);
        let recorder = Recorder::default();
        for seed in 0..5 {
            let probe = zero_effort_probe(&pop.users()[0], &recorder, seed);
            assert!(
                detect_vibration_start(probe.az(), &DetectorConfig::default()).is_err(),
                "zero-effort probe seed {seed} triggered detection"
            );
        }
    }

    #[test]
    fn vibration_aware_probe_is_detectable() {
        let pop = Population::generate(2, 52);
        let recorder = Recorder::default();
        let probe = vibration_aware_probe(&pop.users()[1], &recorder, 3);
        assert!(detect_vibration_start(probe.az(), &DetectorConfig::default()).is_ok());
    }

    #[test]
    fn impersonation_mimics_voicing_not_mandible() {
        let pop = Population::generate(2, 53);
        let recorder = Recorder::default();
        let attacker = &pop.users()[0];
        let victim = &pop.users()[1];
        let probe = impersonation_probe(attacker, victim, &recorder, 4);
        // The probe is a valid vibration recording, labelled as the
        // attacker's hardware session.
        assert!(detect_vibration_start(probe.az(), &DetectorConfig::default()).is_ok());
        assert_eq!(probe.user_id(), attacker.id);
    }

    #[test]
    fn impersonation_f0_is_close_to_victims() {
        // Reconstruct the mimic profile logic: the recorded probe cannot
        // expose f0 directly, so verify the construction on the profile.
        let pop = Population::generate(2, 54);
        let attacker = &pop.users()[0];
        let victim = &pop.users()[1];
        let mut rng = StdRng::seed_from_u64(99 ^ 0x006d_696d_6963);
        let err = |rng: &mut StdRng| 1.0 + rng.gen_range(-0.07f64..0.07);
        let mimic_f0 = victim.vocal.f0_hz * err(&mut rng);
        assert!((mimic_f0 - victim.vocal.f0_hz).abs() / victim.vocal.f0_hz < 0.08);
        // And the attacker's own f0 is (generically) farther away.
        assert!(
            (attacker.vocal.f0_hz - victim.vocal.f0_hz).abs()
                > (mimic_f0 - victim.vocal.f0_hz).abs()
        );
    }
}
