//! The §IV signal-preprocessing module.
//!
//! Four operations, in the paper's order:
//!
//! 1. **Vibration detection and signal segmentation** — windowed standard
//!    deviation on the accelerometer `az` track; the first window past the
//!    start threshold whose followers sustain marks the start; `n`
//!    samples per axis are kept from there.
//! 2. **MAD-based outlier processing** — detect with a MAD rule, replace
//!    with the mean of two previous and two subsequent normal values.
//! 3. **High-pass filtering** — 4th-order Butterworth, 20 Hz cutoff,
//!    removing the body-motion low-frequency components.
//! 4. **Normalisation and multi-axis concatenation** — min–max per
//!    segment, stacked into a `(6, n)` signal array.

use mandipass_dsp::detect::segment_axes;
use mandipass_dsp::filter::Butterworth;
use mandipass_dsp::normalize::min_max_in_place;
use mandipass_dsp::outlier::clean_segment;
use mandipass_dsp::SignalArray;
use mandipass_imu_sim::Recording;

use crate::config::PipelineConfig;
use crate::error::MandiPassError;

/// Runs the full §IV chain on a raw recording, producing the `(6, n)`
/// signal array (with masked axes zeroed).
///
/// # Errors
///
/// * [`MandiPassError::Dsp`] when the vibration start cannot be found,
///   the recording is too short, or contains non-finite samples.
/// * [`MandiPassError::InvalidConfig`] when `config` fails validation.
pub fn preprocess(
    recording: &Recording,
    config: &PipelineConfig,
) -> Result<SignalArray, MandiPassError> {
    let _span = mandipass_telemetry::span("preprocess");
    let result = preprocess_stages(recording, config);
    match &result {
        Ok(_) => mandipass_telemetry::counter!("preprocess.ok").inc(),
        Err(_) => mandipass_telemetry::counter!("preprocess.err").inc(),
    }
    result
}

fn preprocess_stages(
    recording: &Recording,
    config: &PipelineConfig,
) -> Result<SignalArray, MandiPassError> {
    config.validate()?;
    let axes: Vec<&[f64]> = recording.axes().iter().map(Vec::as_slice).collect();
    // Step 1: detect on az, cut n samples from each axis.
    let mut segments = {
        let _span = mandipass_telemetry::span("detect_segment");
        segment_axes(recording.az(), &axes, config.n, &config.detector())?
    };

    // Step 2: MAD outlier repair, per segment.
    {
        let _span = mandipass_telemetry::span("mad_outlier");
        for seg in &mut segments {
            clean_segment(seg, config.mad_threshold);
        }
    }

    // Step 3: high-pass filter (zero-phase so the waveform the gradients
    // see is not phase-distorted).
    {
        let _span = mandipass_telemetry::span("butterworth_highpass");
        let hp = Butterworth::highpass(
            config.highpass_order,
            config.highpass_cutoff_hz,
            recording.sample_rate_hz(),
        )?;
        for seg in &mut segments {
            *seg = hp.filtfilt(seg);
        }
    }

    // Step 4: min-max normalisation and concatenation.
    let _span = mandipass_telemetry::span("normalise");
    for seg in &mut segments {
        min_max_in_place(seg);
    }
    let array = SignalArray::new(segments)?;
    Ok(array.with_axis_mask(&config.axis_mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_imu_sim::{Condition, Population, Recorder};

    fn one_recording(seed: u64) -> Recording {
        let pop = Population::generate(2, 21);
        Recorder::default().record(&pop.users()[0], Condition::Normal, seed)
    }

    #[test]
    fn produces_six_by_n_array() {
        let arr = preprocess(&one_recording(1), &PipelineConfig::default()).unwrap();
        assert_eq!(arr.axis_count(), 6);
        assert_eq!(arr.samples_per_axis(), 60);
    }

    #[test]
    fn output_is_normalised() {
        let arr = preprocess(&one_recording(2), &PipelineConfig::default()).unwrap();
        for axis in arr.iter() {
            assert!(axis.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn axis_mask_zeroes_disabled_axes() {
        let config = PipelineConfig {
            axis_mask: PipelineConfig::axis_mask_first(2),
            ..Default::default()
        };
        let arr = preprocess(&one_recording(3), &config).unwrap();
        assert!(arr.axis(0).iter().any(|&v| v != 0.0));
        assert!(arr.axis(2).iter().all(|&v| v == 0.0));
        assert!(arr.axis(5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_for_same_recording() {
        let rec = one_recording(4);
        let a = preprocess(&rec, &PipelineConfig::default()).unwrap();
        let b = preprocess(&rec, &PipelineConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_sessions_give_similar_but_not_identical_arrays() {
        let a = preprocess(&one_recording(5), &PipelineConfig::default()).unwrap();
        let b = preprocess(&one_recording(6), &PipelineConfig::default()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn silence_only_recording_fails_detection() {
        // Build a recording-like object via a quiet user? Simpler: a
        // custom config with an absurd start threshold nothing reaches.
        let config = PipelineConfig {
            detector_start_threshold: 1e12,
            ..Default::default()
        };
        let err = preprocess(&one_recording(7), &config).unwrap_err();
        assert!(matches!(err, MandiPassError::Dsp(_)));
    }

    #[test]
    fn invalid_config_is_rejected_before_work() {
        let config = PipelineConfig {
            n: 1,
            ..Default::default()
        };
        assert!(matches!(
            preprocess(&one_recording(8), &config),
            Err(MandiPassError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn walk_condition_still_preprocesses() {
        let pop = Population::generate(2, 22);
        let rec = Recorder::default().record(&pop.users()[0], Condition::Walk, 9);
        let arr = preprocess(&rec, &PipelineConfig::default()).unwrap();
        assert_eq!(arr.samples_per_axis(), 60);
    }
}
