//! The §IV signal-preprocessing module.
//!
//! Four operations, in the paper's order:
//!
//! 1. **Vibration detection and signal segmentation** — windowed standard
//!    deviation on the accelerometer `az` track; the first window past the
//!    start threshold whose followers sustain marks the start; `n`
//!    samples per axis are kept from there.
//! 2. **MAD-based outlier processing** — detect with a MAD rule, replace
//!    with the mean of two previous and two subsequent normal values.
//! 3. **High-pass filtering** — 4th-order Butterworth, 20 Hz cutoff,
//!    removing the body-motion low-frequency components.
//! 4. **Normalisation and multi-axis concatenation** — min–max per
//!    segment, stacked into a `(6, n)` signal array.

use mandipass_dsp::detect::segment_axes;
use mandipass_dsp::error::ensure_finite;
use mandipass_dsp::filter::Butterworth;
use mandipass_dsp::normalize::min_max_in_place;
use mandipass_dsp::outlier::clean_segment;
use mandipass_dsp::SignalArray;
use mandipass_imu_sim::Recording;

use crate::config::PipelineConfig;
use crate::error::MandiPassError;

/// Runs the full §IV chain on a raw recording, producing the `(6, n)`
/// signal array (with masked axes zeroed).
///
/// # Errors
///
/// * [`MandiPassError::Dsp`] when the vibration start cannot be found,
///   the recording is too short, or contains non-finite samples.
/// * [`MandiPassError::InvalidConfig`] when `config` fails validation.
pub fn preprocess(
    recording: &Recording,
    config: &PipelineConfig,
) -> Result<SignalArray, MandiPassError> {
    let _span = mandipass_telemetry::span("preprocess");
    let result = preprocess_stages(recording, config);
    match &result {
        Ok(_) => mandipass_telemetry::counter!("preprocess.ok").inc(),
        Err(_) => mandipass_telemetry::counter!("preprocess.err").inc(),
    }
    result
}

fn preprocess_stages(
    recording: &Recording,
    config: &PipelineConfig,
) -> Result<SignalArray, MandiPassError> {
    config.validate()?;
    let axes: Vec<&[f64]> = recording.axes().iter().map(Vec::as_slice).collect();
    // Shape gate: six non-empty axes, or there is nothing to segment.
    // (`Recording::az()`/`len()` index fixed positions, so this check
    // must come before any accessor that could panic.)
    if axes.len() != 6 || axes.iter().any(|a| a.is_empty()) {
        return Err(MandiPassError::EmptyRecording);
    }
    // Step 1: detect on az, cut n samples from each axis.
    let mut segments = {
        let _span = mandipass_telemetry::span("detect_segment");
        segment_axes(recording.az(), &axes, config.n, &config.detector())?
    };

    // Step 2: MAD outlier repair, per segment. The detector only
    // validates the trigger axis, so each cut segment is checked for
    // non-finite samples here — the MAD statistics (and everything
    // downstream) assume finite input.
    {
        let _span = mandipass_telemetry::span("mad_outlier");
        for (axis, seg) in segments.iter_mut().enumerate() {
            ensure_finite(seg).map_err(MandiPassError::Dsp)?;
            let replaced = clean_segment(seg, config.mad_threshold);
            if replaced.len() * 2 > seg.len() {
                return Err(MandiPassError::AllOutlierSegment { axis });
            }
        }
    }

    // Step 3: high-pass filter (zero-phase so the waveform the gradients
    // see is not phase-distorted).
    {
        let _span = mandipass_telemetry::span("butterworth_highpass");
        let hp = Butterworth::highpass(
            config.highpass_order,
            config.highpass_cutoff_hz,
            recording.sample_rate_hz(),
        )?;
        for seg in &mut segments {
            *seg = hp.filtfilt(seg);
        }
    }

    // Step 4: min-max normalisation and concatenation. A zero-range
    // segment on an enabled axis has no scale to normalise by — that is
    // a dead channel, not a signal.
    let _span = mandipass_telemetry::span("normalise");
    for (axis, seg) in segments.iter_mut().enumerate() {
        let enabled = config.axis_mask.get(axis).copied().unwrap_or(false);
        let (min, max) = seg
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        if enabled && min == max {
            return Err(MandiPassError::ZeroVariance { axis });
        }
        min_max_in_place(seg);
    }
    let array = SignalArray::new(segments)?;
    Ok(array.with_axis_mask(&config.axis_mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_imu_sim::{Condition, Population, Recorder};

    fn one_recording(seed: u64) -> Recording {
        let pop = Population::generate(2, 21);
        Recorder::default().record(&pop.users()[0], Condition::Normal, seed)
    }

    #[test]
    fn produces_six_by_n_array() {
        let arr = preprocess(&one_recording(1), &PipelineConfig::default()).unwrap();
        assert_eq!(arr.axis_count(), 6);
        assert_eq!(arr.samples_per_axis(), 60);
    }

    #[test]
    fn output_is_normalised() {
        let arr = preprocess(&one_recording(2), &PipelineConfig::default()).unwrap();
        for axis in arr.iter() {
            assert!(axis.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn axis_mask_zeroes_disabled_axes() {
        let config = PipelineConfig {
            axis_mask: PipelineConfig::axis_mask_first(2),
            ..Default::default()
        };
        let arr = preprocess(&one_recording(3), &config).unwrap();
        assert!(arr.axis(0).iter().any(|&v| v != 0.0));
        assert!(arr.axis(2).iter().all(|&v| v == 0.0));
        assert!(arr.axis(5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_for_same_recording() {
        let rec = one_recording(4);
        let a = preprocess(&rec, &PipelineConfig::default()).unwrap();
        let b = preprocess(&rec, &PipelineConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_sessions_give_similar_but_not_identical_arrays() {
        let a = preprocess(&one_recording(5), &PipelineConfig::default()).unwrap();
        let b = preprocess(&one_recording(6), &PipelineConfig::default()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn silence_only_recording_fails_detection() {
        // Build a recording-like object via a quiet user? Simpler: a
        // custom config with an absurd start threshold nothing reaches.
        let config = PipelineConfig {
            detector_start_threshold: 1e12,
            ..Default::default()
        };
        let err = preprocess(&one_recording(7), &config).unwrap_err();
        assert!(matches!(err, MandiPassError::Dsp(_)));
    }

    #[test]
    fn invalid_config_is_rejected_before_work() {
        let config = PipelineConfig {
            n: 1,
            ..Default::default()
        };
        assert!(matches!(
            preprocess(&one_recording(8), &config),
            Err(MandiPassError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn nan_in_non_trigger_axis_is_a_typed_error() {
        // detect() only validates az; NaNs elsewhere must surface as
        // Dsp(NonFinite), not a panic inside the MAD statistics.
        let rec = one_recording(10);
        let mut axes = rec.axes().to_vec();
        for v in axes[4].iter_mut() {
            *v = f64::NAN;
        }
        let bad = Recording::from_parts(rec.sample_rate_hz(), axes, rec.condition(), rec.user_id())
            .unwrap();
        let err = preprocess(&bad, &PipelineConfig::default()).unwrap_err();
        assert!(matches!(err, MandiPassError::Dsp(_)), "{err:?}");
    }

    #[test]
    fn stuck_zero_axis_is_zero_variance() {
        let rec = one_recording(11);
        let mut axes = rec.axes().to_vec();
        for v in axes[0].iter_mut() {
            *v = 0.0;
        }
        let bad = Recording::from_parts(rec.sample_rate_hz(), axes, rec.condition(), rec.user_id())
            .unwrap();
        let err = preprocess(&bad, &PipelineConfig::default()).unwrap_err();
        assert_eq!(err, MandiPassError::ZeroVariance { axis: 0 });
    }

    #[test]
    fn stuck_disabled_axis_is_tolerated() {
        // The same dead axis is fine when the mask excludes it.
        let rec = one_recording(11);
        let mut axes = rec.axes().to_vec();
        for v in axes[5].iter_mut() {
            *v = 0.0;
        }
        let bad = Recording::from_parts(rec.sample_rate_hz(), axes, rec.condition(), rec.user_id())
            .unwrap();
        let config = PipelineConfig {
            axis_mask: [true, true, true, true, true, false],
            ..Default::default()
        };
        assert!(preprocess(&bad, &config).is_ok());
    }

    #[test]
    fn walk_condition_still_preprocesses() {
        let pop = Population::generate(2, 22);
        let rec = Recorder::default().record(&pop.users()[0], Condition::Walk, 9);
        let arr = preprocess(&rec, &PipelineConfig::default()).unwrap();
        assert_eq!(arr.samples_per_axis(), 60);
    }
}
