//! Pipeline configuration.

use mandipass_dsp::detect::DetectorConfig;

use crate::error::MandiPassError;

/// Configuration of the §IV preprocessing chain and the §V gradient-array
/// construction. Defaults are the paper's published values.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Samples kept per axis after the vibration start (`n`; paper: 60).
    pub n: usize,
    /// Window size (samples) of the start detector (paper: 10).
    pub detector_window: usize,
    /// Window stride of the start detector (paper: 10).
    pub detector_stride: usize,
    /// Standard deviation that starts a vibration event (paper: 250).
    pub detector_start_threshold: f64,
    /// Standard deviation the follow-up windows must keep (paper: 100).
    pub detector_sustain_threshold: f64,
    /// MAD multiples beyond which a sample is an outlier.
    pub mad_threshold: f64,
    /// High-pass filter order (paper: 4).
    pub highpass_order: usize,
    /// High-pass cutoff, Hz (paper: 20).
    pub highpass_cutoff_hz: f64,
    /// Which of the six axes participate (Fig. 11(a) ablates this;
    /// `true` keeps the axis, `false` zeroes it).
    pub axis_mask: [bool; 6],
    /// Cosine-distance acceptance threshold. The paper operates at
    /// 0.5485 (the EER point of its Fig. 10(b) sweep); ours is calibrated
    /// the same way by the Fig. 10(b) experiment.
    pub threshold: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            n: 60,
            detector_window: 10,
            detector_stride: 10,
            detector_start_threshold: 250.0,
            detector_sustain_threshold: 100.0,
            mad_threshold: 3.5,
            highpass_order: 4,
            highpass_cutoff_hz: 20.0,
            axis_mask: [true; 6],
            threshold: 0.5485,
        }
    }
}

impl PipelineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::InvalidConfig`] when `n` is too small to
    /// split into direction planes, windows are empty, thresholds are
    /// non-positive, or no axis is enabled.
    pub fn validate(&self) -> Result<(), MandiPassError> {
        let bad = |reason: &str| {
            Err(MandiPassError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.n < 4 {
            return bad("n must be at least 4");
        }
        if self.detector_window == 0 || self.detector_stride == 0 {
            return bad("detector window and stride must be positive");
        }
        if self.detector_start_threshold <= 0.0 || self.detector_sustain_threshold <= 0.0 {
            return bad("detector thresholds must be positive");
        }
        if self.mad_threshold <= 0.0 {
            return bad("MAD threshold must be positive");
        }
        if self.highpass_order == 0 || !self.highpass_order.is_multiple_of(2) {
            return bad("high-pass order must be a positive even number");
        }
        if self.highpass_cutoff_hz <= 0.0 {
            return bad("high-pass cutoff must be positive");
        }
        if !self.axis_mask.iter().any(|&m| m) {
            return bad("at least one axis must be enabled");
        }
        if self.threshold.is_nan() || self.threshold <= 0.0 {
            return bad("threshold must be positive");
        }
        Ok(())
    }

    /// Gradient samples per direction plane (`n/2`).
    pub fn half_n(&self) -> usize {
        self.n / 2
    }

    /// The detector configuration for the DSP layer.
    pub fn detector(&self) -> DetectorConfig {
        DetectorConfig {
            window: self.detector_window,
            stride: self.detector_stride,
            start_threshold: self.detector_start_threshold,
            sustain_threshold: self.detector_sustain_threshold,
            sustain_windows: 2,
        }
    }

    /// A mask keeping only the first `count` axes in the paper's order
    /// `ax, ay, az, gx, gy, gz` — the Fig. 11(a) sweep.
    ///
    /// # Panics
    ///
    /// Panics when `count` is 0 or greater than 6.
    pub fn axis_mask_first(count: usize) -> [bool; 6] {
        assert!((1..=6).contains(&count), "axis count must be 1..=6");
        let mut mask = [false; 6];
        for m in mask.iter_mut().take(count) {
            *m = true;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_values() {
        let c = PipelineConfig::default();
        assert_eq!(c.n, 60);
        assert_eq!(c.detector_window, 10);
        assert_eq!(c.detector_stride, 10);
        assert_eq!(c.detector_start_threshold, 250.0);
        assert_eq!(c.detector_sustain_threshold, 100.0);
        assert_eq!(c.highpass_order, 4);
        assert_eq!(c.highpass_cutoff_hz, 20.0);
        assert_eq!(c.threshold, 0.5485);
        assert_eq!(c.half_n(), 30);
        c.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = PipelineConfig::default();
        let mut c = base.clone();
        c.n = 2;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.highpass_order = 3;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.axis_mask = [false; 6];
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.threshold = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.detector_stride = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn axis_mask_first_follows_paper_order() {
        assert_eq!(
            PipelineConfig::axis_mask_first(1),
            [true, false, false, false, false, false]
        );
        assert_eq!(
            PipelineConfig::axis_mask_first(3),
            [true, true, true, false, false, false]
        );
        assert_eq!(PipelineConfig::axis_mask_first(6), [true; 6]);
    }

    #[test]
    #[should_panic(expected = "axis count")]
    fn zero_axis_mask_panics() {
        let _ = PipelineConfig::axis_mask_first(0);
    }

    #[test]
    fn detector_mirrors_config() {
        let c = PipelineConfig::default();
        let d = c.detector();
        assert_eq!(d.window, 10);
        assert_eq!(d.start_threshold, 250.0);
    }
}
