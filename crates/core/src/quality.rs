//! Pre-preprocessing signal-quality gate.
//!
//! Real earphone captures fail in ways the §IV pipeline was never meant
//! to absorb: non-finite samples off a flaky bus, ADC saturation,
//! dead/stuck axes, truncated captures, and probes with no vibration
//! energy at all. Scoring a [`Recording`] *before* preprocessing gives
//! every rejection a machine-readable reason (for telemetry and the
//! enclave audit trail) and lets the verification policy decide between
//! retrying, degrading to an accelerometer-only template, or giving up.
//!
//! All statistics run on the **raw** recording: the zero-phase high-pass
//! in preprocessing smears edge transients into constant tracks, so a
//! stuck axis is only reliably visible before filtering.

use mandipass_imu_sim::Recording;

/// Thresholds for the quality gate.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityConfig {
    /// Minimum samples per axis. The detector needs its windows plus the
    /// paper's `n = 60` segment after the vibration start.
    pub min_samples: usize,
    /// Maximum tolerated non-finite samples across all axes.
    pub max_nonfinite: usize,
    /// Maximum fraction of an axis's samples sitting exactly on its
    /// extreme values (rail-sitting — the signature of clipping).
    pub max_saturation_ratio: f64,
    /// Minimum standard deviation (raw LSB) for an axis to count as
    /// alive; a stuck register is exactly constant.
    pub dead_axis_min_std: f64,
    /// Minimum windowed standard deviation on `az` for the probe to
    /// plausibly contain a vibration burst (the paper's start rule uses
    /// σ > 250 over 10-sample windows).
    pub min_energy_std: f64,
    /// Window length, in samples, for the energy proxy.
    pub energy_window: usize,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            min_samples: 80,
            max_nonfinite: 0,
            max_saturation_ratio: 0.05,
            dead_axis_min_std: 1.0,
            min_energy_std: 250.0,
            energy_window: 10,
        }
    }
}

/// A machine-readable reason a probe failed the quality gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Non-finite samples (NaN/±inf) beyond the tolerated count.
    NonFinite,
    /// Fewer samples than the pipeline needs.
    TooShort,
    /// An axis shows no variation — dead or stuck.
    DeadAxis {
        /// The offending axis (paper order, `0..6`).
        axis: usize,
    },
    /// An axis spends too much time pinned at its extremes (clipping).
    Saturated {
        /// The offending axis (paper order, `0..6`).
        axis: usize,
    },
    /// No window of `az` reaches vibration energy — nothing to detect.
    LowEnergy,
}

impl RejectReason {
    /// A short stable label for telemetry counters and audit events.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::NonFinite => "non_finite",
            RejectReason::TooShort => "too_short",
            RejectReason::DeadAxis { .. } => "dead_axis",
            RejectReason::Saturated { .. } => "saturated",
            RejectReason::LowEnergy => "low_energy",
        }
    }
}

/// The outcome of scoring one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Samples per axis.
    pub samples: usize,
    /// Total non-finite samples across all axes.
    pub nonfinite: usize,
    /// Per-axis standard deviation over finite samples (0.0 when an
    /// axis holds no finite samples).
    pub axis_std: Vec<f64>,
    /// Per-axis fraction of samples at the axis extremes.
    pub rail_ratio: Vec<f64>,
    /// Best windowed standard deviation observed on `az`.
    pub energy_std: f64,
    /// Why the probe is rejected; empty means it passed.
    pub reasons: Vec<RejectReason>,
}

impl QualityReport {
    /// Whether the probe passed every check.
    pub fn ok(&self) -> bool {
        self.reasons.is_empty()
    }

    /// Whether the probe failed *only* through gyroscope-axis faults
    /// (dead or saturated axes in `3..6`), leaving the accelerometer
    /// fit for a degraded accel-only verification.
    pub fn degraded_viable(&self) -> bool {
        !self.reasons.is_empty()
            && self.reasons.iter().all(|r| match r {
                RejectReason::DeadAxis { axis } | RejectReason::Saturated { axis } => *axis >= 3,
                _ => false,
            })
    }

    /// The axes flagged dead or saturated.
    pub fn faulty_axes(&self) -> Vec<usize> {
        self.reasons
            .iter()
            .filter_map(|r| match r {
                RejectReason::DeadAxis { axis } | RejectReason::Saturated { axis } => Some(*axis),
                _ => None,
            })
            .collect()
    }

    /// Serialises the report — the payload the monitor's flight recorder
    /// attaches to rejected verifications.
    pub fn to_json(&self) -> mandipass_util::json::Value {
        use mandipass_util::json::Value;
        let num = |v: f64| {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        };
        let nums = |xs: &[f64]| Value::Array(xs.iter().map(|&v| num(v)).collect());
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(self.ok())),
            ("samples".to_string(), Value::Number(self.samples as f64)),
            (
                "nonfinite".to_string(),
                Value::Number(self.nonfinite as f64),
            ),
            ("axis_std".to_string(), nums(&self.axis_std)),
            ("rail_ratio".to_string(), nums(&self.rail_ratio)),
            ("energy_std".to_string(), num(self.energy_std)),
            (
                "reasons".to_string(),
                Value::Array(
                    self.reasons
                        .iter()
                        .map(|r| Value::String(r.label().to_string()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn finite_std(xs: &[f64]) -> f64 {
    let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return 0.0;
    }
    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
    (finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / finite.len() as f64).sqrt()
}

fn rail_ratio(xs: &[f64]) -> f64 {
    let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return 0.0;
    }
    let max = finite.iter().cloned().fold(f64::MIN, f64::max);
    let min = finite.iter().cloned().fold(f64::MAX, f64::min);
    if max == min {
        // Constant axis: rail-sitting is meaningless; the dead-axis
        // check owns this case.
        return 0.0;
    }
    let at_rail = finite.iter().filter(|&&v| v == max || v == min).count();
    at_rail as f64 / finite.len() as f64
}

/// Scores `recording` against `config`, producing a [`QualityReport`]
/// whose `reasons` list is empty exactly when the probe is usable.
///
/// Never panics, whatever the recording contains.
pub fn assess(recording: &Recording, config: &QualityConfig) -> QualityReport {
    let _span = mandipass_telemetry::span("quality_assess");
    let axes = recording.axes();
    let samples = axes.first().map_or(0, Vec::len);
    let nonfinite = axes
        .iter()
        .flat_map(|a| a.iter())
        .filter(|v| !v.is_finite())
        .count();
    let axis_std: Vec<f64> = axes.iter().map(|a| finite_std(a)).collect();
    let rails: Vec<f64> = axes.iter().map(|a| rail_ratio(a)).collect();
    let energy_std = axes.get(2).map_or(0.0, |az| {
        az.chunks(config.energy_window.max(1))
            .filter(|c| c.len() == config.energy_window.max(1))
            .map(finite_std)
            .fold(0.0f64, f64::max)
    });

    let mut reasons = Vec::new();
    if nonfinite > config.max_nonfinite {
        reasons.push(RejectReason::NonFinite);
    }
    if samples < config.min_samples || axes.len() != 6 {
        reasons.push(RejectReason::TooShort);
    }
    for (axis, &std) in axis_std.iter().enumerate() {
        if std < config.dead_axis_min_std {
            reasons.push(RejectReason::DeadAxis { axis });
        }
    }
    for (axis, &ratio) in rails.iter().enumerate() {
        if ratio > config.max_saturation_ratio {
            reasons.push(RejectReason::Saturated { axis });
        }
    }
    // Only meaningful when az itself is alive and finite; otherwise the
    // reasons above already explain the failure.
    if reasons.is_empty() && energy_std < config.min_energy_std {
        reasons.push(RejectReason::LowEnergy);
    }

    QualityReport {
        samples,
        nonfinite,
        axis_std,
        rail_ratio: rails,
        energy_std,
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_imu_sim::faults::FaultProfile;
    use mandipass_imu_sim::{Condition, Population, Recorder};

    fn clean_recording() -> Recording {
        let pop = Population::generate(2, 5);
        Recorder::default().record(&pop.users()[0], Condition::Normal, 17)
    }

    #[test]
    fn clean_recording_passes() {
        let report = assess(&clean_recording(), &QualityConfig::default());
        assert!(report.ok(), "reject reasons: {:?}", report.reasons);
        assert_eq!(report.nonfinite, 0);
        assert!(report.energy_std > 250.0);
    }

    #[test]
    fn nan_burst_is_rejected_as_non_finite() {
        let rec = FaultProfile::non_finite(0.1).apply(&clean_recording(), 3);
        let report = assess(&rec, &QualityConfig::default());
        assert!(!report.ok());
        assert!(report.reasons.contains(&RejectReason::NonFinite));
        assert!(report.nonfinite > 0);
    }

    #[test]
    fn stuck_gyro_is_rejected_as_dead_axis_and_degraded_viable() {
        let rec = FaultProfile::stuck_gyro(0.0).apply(&clean_recording(), 3);
        let report = assess(&rec, &QualityConfig::default());
        assert!(!report.ok());
        assert_eq!(report.reasons, vec![RejectReason::DeadAxis { axis: 3 }]);
        assert!(report.degraded_viable());
        assert_eq!(report.faulty_axes(), vec![3]);
    }

    #[test]
    fn stuck_accel_is_not_degraded_viable() {
        let rec = FaultProfile::new(
            "stuck_ax",
            vec![mandipass_imu_sim::Fault::StuckAxis {
                axis: 0,
                value: Some(0.0),
            }],
        )
        .apply(&clean_recording(), 3);
        let report = assess(&rec, &QualityConfig::default());
        assert!(report.reasons.contains(&RejectReason::DeadAxis { axis: 0 }));
        assert!(!report.degraded_viable());
    }

    #[test]
    fn heavy_clipping_is_rejected_as_saturated() {
        let rec = FaultProfile::clipping(1.0).apply(&clean_recording(), 3);
        let report = assess(&rec, &QualityConfig::default());
        assert!(!report.ok());
        assert!(report
            .reasons
            .iter()
            .any(|r| matches!(r, RejectReason::Saturated { .. })));
    }

    #[test]
    fn truncated_capture_is_rejected_as_too_short() {
        let rec = FaultProfile::truncate(0.9).apply(&clean_recording(), 3);
        let report = assess(&rec, &QualityConfig::default());
        assert!(report.reasons.contains(&RejectReason::TooShort));
    }

    #[test]
    fn silence_is_rejected_as_low_energy() {
        // A recording whose az never reaches vibration energy: use a huge
        // energy threshold so even the real burst is "too quiet".
        let config = QualityConfig {
            min_energy_std: 1e12,
            ..Default::default()
        };
        let report = assess(&clean_recording(), &config);
        assert_eq!(report.reasons, vec![RejectReason::LowEnergy]);
        assert!(!report.degraded_viable());
    }

    #[test]
    fn assessment_never_panics_on_garbage() {
        let rec = Recording::from_parts(350.0, vec![vec![f64::NAN; 100]; 6], Condition::Normal, 0)
            .unwrap();
        let report = assess(&rec, &QualityConfig::default());
        assert!(!report.ok());
        assert_eq!(report.nonfinite, 600);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RejectReason::NonFinite.label(), "non_finite");
        assert_eq!(RejectReason::TooShort.label(), "too_short");
        assert_eq!(RejectReason::DeadAxis { axis: 1 }.label(), "dead_axis");
        assert_eq!(RejectReason::Saturated { axis: 1 }.label(), "saturated");
        assert_eq!(RejectReason::LowEnergy.label(), "low_energy");
    }
}
