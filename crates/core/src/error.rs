//! Error type for the MandiPass pipeline.

use std::error::Error;
use std::fmt;

use mandipass_dsp::DspError;
use mandipass_nn::NnError;

/// Errors produced by the MandiPass pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MandiPassError {
    /// A DSP stage failed (detection, filtering, segmentation, …).
    Dsp(DspError),
    /// A neural-network stage failed (shape or serialisation problems).
    Nn(NnError),
    /// A verification request referenced a user id with no enrolled
    /// template.
    NotEnrolled {
        /// The unknown user id.
        user_id: u32,
    },
    /// Enrolment was attempted with no usable recordings.
    NoEnrolmentData,
    /// Two vectors that must agree in dimension did not.
    DimensionMismatch {
        /// Dimension expected.
        expected: usize,
        /// Dimension received.
        got: usize,
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for MandiPassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MandiPassError::Dsp(e) => write!(f, "signal processing failed: {e}"),
            MandiPassError::Nn(e) => write!(f, "model failure: {e}"),
            MandiPassError::NotEnrolled { user_id } => {
                write!(f, "no template enrolled for user {user_id}")
            }
            MandiPassError::NoEnrolmentData => {
                write!(f, "enrolment requires at least one usable recording")
            }
            MandiPassError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MandiPassError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl Error for MandiPassError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MandiPassError::Dsp(e) => Some(e),
            MandiPassError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for MandiPassError {
    fn from(e: DspError) -> Self {
        MandiPassError::Dsp(e)
    }
}

impl From<NnError> for MandiPassError {
    fn from(e: NnError) -> Self {
        MandiPassError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_errors_convert_and_chain() {
        let e: MandiPassError = DspError::VibrationNotFound.into();
        assert!(matches!(e, MandiPassError::Dsp(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("signal processing"));
    }

    #[test]
    fn displays_are_informative() {
        assert!(MandiPassError::NotEnrolled { user_id: 3 }
            .to_string()
            .contains('3'));
        assert!(MandiPassError::DimensionMismatch {
            expected: 512,
            got: 256
        }
        .to_string()
        .contains("512"));
        assert!(MandiPassError::InvalidConfig {
            reason: "n too small".into()
        }
        .to_string()
        .contains("n too small"));
        assert!(!MandiPassError::NoEnrolmentData.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MandiPassError>();
    }
}
