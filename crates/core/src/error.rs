//! Error type for the MandiPass pipeline.

use std::error::Error;
use std::fmt;

use mandipass_dsp::DspError;
use mandipass_imu_sim::SimError;
use mandipass_nn::NnError;

use crate::quality::RejectReason;

/// Errors produced by the MandiPass pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MandiPassError {
    /// A DSP stage failed (detection, filtering, segmentation, …).
    Dsp(DspError),
    /// A neural-network stage failed (shape or serialisation problems).
    Nn(NnError),
    /// A verification request referenced a user id with no enrolled
    /// template.
    NotEnrolled {
        /// The unknown user id.
        user_id: u32,
    },
    /// Enrolment was attempted with no usable recordings.
    NoEnrolmentData,
    /// Two vectors that must agree in dimension did not.
    DimensionMismatch {
        /// Dimension expected.
        expected: usize,
        /// Dimension received.
        got: usize,
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The simulator (or a recording assembled from raw parts) failed.
    Sim(SimError),
    /// A probe recording failed the pre-preprocessing quality gate.
    LowQuality {
        /// The machine-readable reject reasons, most severe first.
        reasons: Vec<RejectReason>,
    },
    /// A recording with no samples (or missing axes) was submitted.
    EmptyRecording,
    /// The MAD stage flagged the majority of a segment as outliers —
    /// the window carries no usable signal.
    AllOutlierSegment {
        /// Axis index of the degenerate segment.
        axis: usize,
    },
    /// An enabled axis segment had zero range, so min-max normalisation
    /// is undefined (a dead or stuck axis).
    ZeroVariance {
        /// Axis index of the constant segment.
        axis: usize,
    },
    /// Every probe of a policy-driven verification was rejected.
    RetriesExhausted {
        /// Number of probes attempted.
        attempts: usize,
        /// One label per rejected attempt (e.g. `"quality:dead_axis"`).
        reasons: Vec<String>,
    },
}

impl fmt::Display for MandiPassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MandiPassError::Dsp(e) => write!(f, "signal processing failed: {e}"),
            MandiPassError::Nn(e) => write!(f, "model failure: {e}"),
            MandiPassError::NotEnrolled { user_id } => {
                write!(f, "no template enrolled for user {user_id}")
            }
            MandiPassError::NoEnrolmentData => {
                write!(f, "enrolment requires at least one usable recording")
            }
            MandiPassError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MandiPassError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            MandiPassError::Sim(e) => write!(f, "recording failure: {e}"),
            MandiPassError::LowQuality { reasons } => {
                let labels: Vec<&str> = reasons.iter().map(|r| r.label()).collect();
                write!(f, "probe rejected by quality gate: {}", labels.join(", "))
            }
            MandiPassError::EmptyRecording => {
                write!(f, "recording has no samples")
            }
            MandiPassError::AllOutlierSegment { axis } => {
                write!(f, "axis {axis} segment is mostly outliers")
            }
            MandiPassError::ZeroVariance { axis } => {
                write!(f, "axis {axis} segment has zero variance")
            }
            MandiPassError::RetriesExhausted { attempts, reasons } => {
                write!(
                    f,
                    "all {attempts} verification attempts rejected: {}",
                    reasons.join("; ")
                )
            }
        }
    }
}

impl Error for MandiPassError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MandiPassError::Dsp(e) => Some(e),
            MandiPassError::Nn(e) => Some(e),
            MandiPassError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for MandiPassError {
    fn from(e: DspError) -> Self {
        MandiPassError::Dsp(e)
    }
}

impl From<NnError> for MandiPassError {
    fn from(e: NnError) -> Self {
        MandiPassError::Nn(e)
    }
}

impl From<SimError> for MandiPassError {
    fn from(e: SimError) -> Self {
        MandiPassError::Sim(e)
    }
}

impl MandiPassError {
    /// A short stable label for telemetry counters and audit events
    /// (e.g. `"dsp"`, `"quality"`, `"empty_recording"`).
    pub fn label(&self) -> &'static str {
        match self {
            MandiPassError::Dsp(_) => "dsp",
            MandiPassError::Nn(_) => "nn",
            MandiPassError::NotEnrolled { .. } => "not_enrolled",
            MandiPassError::NoEnrolmentData => "no_enrolment_data",
            MandiPassError::DimensionMismatch { .. } => "dimension_mismatch",
            MandiPassError::InvalidConfig { .. } => "invalid_config",
            MandiPassError::Sim(_) => "sim",
            MandiPassError::LowQuality { .. } => "quality",
            MandiPassError::EmptyRecording => "empty_recording",
            MandiPassError::AllOutlierSegment { .. } => "all_outlier_segment",
            MandiPassError::ZeroVariance { .. } => "zero_variance",
            MandiPassError::RetriesExhausted { .. } => "retries_exhausted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_errors_convert_and_chain() {
        let e: MandiPassError = DspError::VibrationNotFound.into();
        assert!(matches!(e, MandiPassError::Dsp(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("signal processing"));
    }

    #[test]
    fn displays_are_informative() {
        assert!(MandiPassError::NotEnrolled { user_id: 3 }
            .to_string()
            .contains('3'));
        assert!(MandiPassError::DimensionMismatch {
            expected: 512,
            got: 256
        }
        .to_string()
        .contains("512"));
        assert!(MandiPassError::InvalidConfig {
            reason: "n too small".into()
        }
        .to_string()
        .contains("n too small"));
        assert!(!MandiPassError::NoEnrolmentData.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MandiPassError>();
    }
}
