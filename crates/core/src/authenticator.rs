//! The registration/verification API (§III system overview).
//!
//! Registration: the user hums "EMM", the probe runs through
//! preprocessing and the extractor, the MandiblePrint is transformed by
//! the user's Gaussian matrix, and the cancelable template is stored in
//! the secure enclave. Verification repeats the pipeline on a fresh probe
//! and accepts when the cosine distance to the stored template falls
//! below the operating threshold.

use mandipass_imu_sim::Recording;
use mandipass_telemetry::flight::{FlightOutcome, VerifyFlight};
use mandipass_telemetry::monitor::Monitor;
use mandipass_telemetry::span::SpanTree;
use mandipass_util::json::Value;

use crate::config::PipelineConfig;
use crate::enclave::SecureEnclave;
use crate::error::MandiPassError;
use crate::extractor::BiometricExtractor;
use crate::gradient_array::GradientArray;
use crate::preprocess::preprocess;
use crate::quality::{self, QualityConfig};
use crate::similarity::{accepts, cosine_distance};
use crate::template::{CancelableTemplate, GaussianMatrix, MandiblePrint};

/// Result of one verification request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyOutcome {
    /// Whether the request was accepted as the genuine user.
    pub accepted: bool,
    /// Cosine distance between the probe's cancelable print and the
    /// stored template (lower = more similar).
    pub distance: f64,
    /// The threshold the decision was made against.
    pub threshold: f64,
}

/// Retry/degradation policy for multi-probe verification.
///
/// Each candidate probe is scored by the quality gate first; a clean
/// probe verifies normally, a probe whose only faults are gyro-axis
/// failures may verify in *degraded* accelerometer-only mode under a
/// tightened threshold, and anything else consumes an attempt. The
/// policy is exhausted when `max_attempts` probes have been rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyPolicy {
    /// Maximum number of probes considered (further probes are ignored).
    pub max_attempts: usize,
    /// Quality-gate thresholds applied to every probe.
    pub quality: QualityConfig,
    /// Whether gyro-fault probes may verify accelerometer-only.
    pub allow_degraded: bool,
    /// Multiplier on the accept threshold in degraded mode. Below 1.0
    /// tightens the decision to compensate for the lost gyro evidence.
    pub degraded_threshold_scale: f64,
}

impl Default for VerifyPolicy {
    fn default() -> Self {
        VerifyPolicy {
            max_attempts: 3,
            quality: QualityConfig::default(),
            allow_degraded: true,
            degraded_threshold_scale: 0.8,
        }
    }
}

/// The outcome of a policy-driven verification.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// The accept/reject decision of the probe that finally verified.
    pub outcome: VerifyOutcome,
    /// Probes consumed, including the one that verified.
    pub attempts: usize,
    /// Whether the decision was made in degraded accel-only mode.
    pub degraded: bool,
    /// Reject labels of the probes consumed before the decision.
    pub rejects: Vec<String>,
}

/// A complete MandiPass deployment: trained extractor + pipeline
/// configuration + secure enclave.
#[derive(Debug)]
pub struct MandiPass {
    extractor: BiometricExtractor,
    config: PipelineConfig,
    enclave: SecureEnclave,
    /// Live health monitor fed by every verify decision, quality
    /// rejection, and enclave access (the global monitor unless rebound
    /// via [`MandiPass::set_monitor`]).
    monitor: &'static Monitor,
}

impl MandiPass {
    /// Assembles a deployment around a (typically VSP-trained) extractor.
    /// Pre-packs the extractor's weights for the inference fast path
    /// (bit-exact; no behaviour change).
    pub fn new(mut extractor: BiometricExtractor, config: PipelineConfig) -> Self {
        extractor.prepare_inference();
        MandiPass {
            extractor,
            config,
            enclave: SecureEnclave::new(),
            monitor: mandipass_telemetry::monitor::global(),
        }
    }

    /// Deployment-time optimisation: fuses each batch norm's running
    /// statistics into the preceding convolution (fewer layers per
    /// forward). Embeddings then match the unfused network to ≈1e-6
    /// rather than bit for bit — see
    /// [`BiometricExtractor::fuse`]. Returns the folded-layer count.
    ///
    /// # Errors
    ///
    /// Propagates a pending-training-cache refusal from the extractor.
    pub fn fuse(&mut self) -> Result<usize, MandiPassError> {
        self.extractor.fuse()
    }

    /// Redirects this deployment's live-monitoring feed (decisions,
    /// rejects, flights, enclave audit) to `monitor`. The default is the
    /// process-wide global monitor.
    pub fn set_monitor(&mut self, monitor: &'static Monitor) {
        self.monitor = monitor;
        self.enclave.set_monitor(monitor);
    }

    /// The monitor this deployment feeds.
    pub fn monitor(&self) -> &'static Monitor {
        self.monitor
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Mutable pipeline configuration (e.g. to recalibrate the threshold).
    pub fn config_mut(&mut self) -> &mut PipelineConfig {
        &mut self.config
    }

    /// The MandiblePrint dimensionality of the deployed extractor.
    pub fn embedding_dim(&self) -> usize {
        self.extractor.embedding_dim()
    }

    /// The template store.
    pub fn enclave(&self) -> &SecureEnclave {
        &self.enclave
    }

    /// Extracts the (pre-transform) MandiblePrint of one raw recording.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and extraction failures.
    pub fn extract_print(&self, recording: &Recording) -> Result<MandiblePrint, MandiPassError> {
        self.extract_print_with_config(recording, &self.config)
    }

    fn extract_print_with_config(
        &self,
        recording: &Recording,
        config: &PipelineConfig,
    ) -> Result<MandiblePrint, MandiPassError> {
        let _span = mandipass_telemetry::span("extract_print");
        let array = preprocess(recording, config)?;
        let grad = GradientArray::from_signal_array(&array, config.half_n())?;
        let prints = self.extractor.extract(&[&grad])?;
        // The extractor contract is one print per input; an empty batch
        // result is a model-shape failure, not a panic-worthy state.
        prints
            .into_iter()
            .next()
            .ok_or(MandiPassError::DimensionMismatch {
                expected: 1,
                got: 0,
            })
    }

    /// Registers `user_id` from one or more enrolment recordings under
    /// the user's Gaussian matrix. The MandiblePrints are averaged, then
    /// transformed, then sealed in the enclave.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NoEnrolmentData`] when every recording
    /// fails preprocessing, and propagates transform dimension errors.
    pub fn enroll(
        &mut self,
        user_id: u32,
        recordings: &[Recording],
        matrix: &GaussianMatrix,
    ) -> Result<(), MandiPassError> {
        let _span = mandipass_telemetry::span("enroll");
        let mut prints = Vec::with_capacity(recordings.len());
        for rec in recordings {
            match self.extract_print(rec) {
                Ok(p) => prints.push(p),
                // Unusable probes are skipped; enrolment only fails when
                // nothing survives (NoEnrolmentData below).
                Err(
                    MandiPassError::Dsp(_)
                    | MandiPassError::EmptyRecording
                    | MandiPassError::AllOutlierSegment { .. }
                    | MandiPassError::ZeroVariance { .. },
                ) => continue,
                Err(e) => return Err(e),
            }
        }
        let mean = MandiblePrint::mean(&prints)?;
        let template = matrix.transform(&mean)?;
        // Feed the drift detector its enrolment-time baseline: the
        // genuine distances of this user's own enrolment probes against
        // the freshly sealed template. Freezing replaces the paper's
        // default operating-point prior with measured calibration.
        let baseline: Vec<f64> = prints
            .iter()
            .filter_map(|p| matrix.transform(p).ok())
            .map(|c| cosine_distance(template.as_slice(), c.as_slice()))
            .collect();
        self.enclave.store(user_id, template);
        self.monitor.extend_baseline(&baseline);
        self.monitor.freeze_baseline();
        // Also seal an accelerometer-only fallback template, so a later
        // gyro failure can be verified like-for-like in degraded mode.
        // Best-effort: enrolment succeeds without one (degraded
        // verification then falls back to the primary template).
        let degraded_cfg = self.degraded_config(1.0);
        let degraded_prints: Vec<MandiblePrint> = recordings
            .iter()
            .filter_map(|rec| self.extract_print_with_config(rec, &degraded_cfg).ok())
            .collect();
        if let Ok(mean) = MandiblePrint::mean(&degraded_prints) {
            if let Ok(template) = matrix.transform(&mean) {
                self.enclave.store_degraded(user_id, template);
            }
        }
        Ok(())
    }

    /// Verifies a probe recording against `user_id`'s stored template.
    ///
    /// # Errors
    ///
    /// * [`MandiPassError::NotEnrolled`] when no template exists.
    /// * [`MandiPassError::Dsp`] when the probe contains no detectable
    ///   vibration (e.g. a zero-effort attacker who does not hum).
    pub fn verify(
        &self,
        user_id: u32,
        probe: &Recording,
        matrix: &GaussianMatrix,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify");
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?
        };
        let print = self.extract_print(probe)?;
        let cancelable = matrix.transform(&print)?;
        let outcome = self.decide(&template, &cancelable);
        self.finish_verify(user_id, outcome);
        Ok(outcome)
    }

    /// Compares a raw cancelable vector against the stored template —
    /// the code path a replay attacker exercises by exhibiting a stolen
    /// template directly.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NotEnrolled`] when no template exists.
    pub fn verify_cancelable(
        &self,
        user_id: u32,
        presented: &CancelableTemplate,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify");
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?
        };
        let outcome = self.decide(&template, presented);
        self.finish_verify(user_id, outcome);
        Ok(outcome)
    }

    /// Verifies under a [`VerifyPolicy`]: each probe in `probes` (up to
    /// `policy.max_attempts`) passes the quality gate before the
    /// pipeline runs. Gyro-only faults may fall back to degraded
    /// accelerometer-only verification with a tightened threshold.
    ///
    /// Every rejected probe is recorded in the enclave audit trail and
    /// in per-reason telemetry counters (`quality.reject.<label>`); the
    /// retry depth lands in the `verify.retry_depth` histogram. Flight
    /// records emitted along the way inherit the thread's active
    /// request trace id ([`mandipass_telemetry::trace::current`]), so a
    /// serve-layer trace and the flights it produced cross-reference.
    ///
    /// # Errors
    ///
    /// * [`MandiPassError::NotEnrolled`] when no template exists.
    /// * [`MandiPassError::RetriesExhausted`] when every considered
    ///   probe was rejected, carrying one label per attempt.
    pub fn verify_with_policy(
        &self,
        user_id: u32,
        probes: &[Recording],
        matrix: &GaussianMatrix,
        policy: &VerifyPolicy,
    ) -> Result<PolicyDecision, MandiPassError> {
        let _span = mandipass_telemetry::span("verify_with_policy");
        // Fail fast on a missing template: no number of probes fixes it.
        {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?;
        }
        let considered = &probes[..probes.len().min(policy.max_attempts.max(1))];
        // Batched fast path: when two or more probes pass the quality
        // gate, one [N, …] CNN forward through the scratch arena
        // amortises the per-forward fixed costs across the retry budget.
        // Flows with fewer clean probes — the common single-probe serve
        // request — keep the sequential path, and with it the exact
        // telemetry shape they had before batching existed.
        if considered.len() >= 2 {
            let reports: Vec<quality::QualityReport> = considered
                .iter()
                .map(|p| quality::assess(p, &policy.quality))
                .collect();
            if reports.iter().filter(|r| r.ok()).count() >= 2 {
                return self
                    .verify_with_policy_batched(user_id, considered, reports, matrix, policy);
            }
        }
        self.verify_with_policy_sequential(user_id, considered, matrix, policy)
    }

    /// The original one-probe-at-a-time policy walk.
    fn verify_with_policy_sequential(
        &self,
        user_id: u32,
        considered: &[Recording],
        matrix: &GaussianMatrix,
        policy: &VerifyPolicy,
    ) -> Result<PolicyDecision, MandiPassError> {
        let mut rejects: Vec<String> = Vec::new();
        let mut attempts = 0usize;
        for probe in considered {
            attempts += 1;
            let report = quality::assess(probe, &policy.quality);
            if report.ok() {
                // Capture the attempt's span tree for the flight
                // recorder; inside an outer capture (benchmarks, the
                // determinism suite) this yields and records nothing.
                let (result, spans) =
                    mandipass_telemetry::try_capture(|| self.verify(user_id, probe, matrix));
                match result {
                    Ok(outcome) => {
                        self.finish_policy(attempts, false);
                        return Ok(PolicyDecision {
                            outcome,
                            attempts,
                            degraded: false,
                            rejects,
                        });
                    }
                    Err(e) => {
                        self.count_reject("pipeline", e.label());
                        self.enclave.record_quality_reject(user_id, e.label());
                        let label = format!("pipeline:{}", e.label());
                        self.monitor.observe_reject(&label);
                        self.record_reject_flight(user_id, &label, &report, spans);
                        rejects.push(label);
                        continue;
                    }
                }
            }
            if policy.allow_degraded && report.degraded_viable() {
                let (result, spans) = mandipass_telemetry::try_capture(|| {
                    self.verify_degraded(user_id, probe, matrix, policy)
                });
                match result {
                    Ok(outcome) => {
                        mandipass_telemetry::counter!("verify.degraded").inc();
                        self.finish_policy(attempts, true);
                        return Ok(PolicyDecision {
                            outcome,
                            attempts,
                            degraded: true,
                            rejects,
                        });
                    }
                    Err(e) => {
                        self.count_reject("pipeline", e.label());
                        self.enclave.record_quality_reject(user_id, e.label());
                        let label = format!("pipeline:{}", e.label());
                        self.monitor.observe_reject(&label);
                        self.record_reject_flight(user_id, &label, &report, spans);
                        rejects.push(label);
                        continue;
                    }
                }
            }
            // Quality rejection: one audit event + counter per reason.
            for reason in &report.reasons {
                self.count_reject("quality", reason.label());
                self.enclave.record_quality_reject(user_id, reason.label());
            }
            let labels: Vec<&str> = report.reasons.iter().map(|r| r.label()).collect();
            let label = format!("quality:{}", labels.join("+"));
            self.monitor.observe_reject(&label);
            self.record_reject_flight(user_id, &label, &report, None);
            rejects.push(label);
        }
        self.finish_policy(attempts, false);
        let mut flight = VerifyFlight::new(user_id, FlightOutcome::Exhausted);
        flight.attempts = attempts;
        flight.rejects = rejects.clone();
        self.monitor.record_flight(flight);
        Err(MandiPassError::RetriesExhausted {
            attempts,
            reasons: rejects,
        })
    }

    /// The batched policy walk: preprocesses every quality-ok probe,
    /// extracts all their MandiblePrints through one batched CNN forward
    /// ([`BiometricExtractor::extract_prints_batch`]), then replays the
    /// sequential walk's decision/bookkeeping order over the precomputed
    /// prints. The outcome, attempt counting, reject labels, audit
    /// events, and monitor feeds match the sequential path exactly; only
    /// the number of CNN forwards (one instead of up to N) differs.
    fn verify_with_policy_batched(
        &self,
        user_id: u32,
        considered: &[Recording],
        reports: Vec<quality::QualityReport>,
        matrix: &GaussianMatrix,
        policy: &VerifyPolicy,
    ) -> Result<PolicyDecision, MandiPassError> {
        enum Prep {
            /// Quality-ok, preprocessed: waiting on the batched forward.
            Grad(GradientArray),
            /// Quality-ok but the preprocessing pipeline rejected it.
            Failed(MandiPassError, Option<SpanTree>),
            /// Quality gate failed; the walk handles degraded/reject.
            Gated,
        }
        let preps: Vec<Prep> = considered
            .iter()
            .zip(&reports)
            .map(|(probe, report)| {
                if !report.ok() {
                    return Prep::Gated;
                }
                let (result, spans) = mandipass_telemetry::try_capture(|| {
                    let _span = mandipass_telemetry::span("extract_print");
                    let array = preprocess(probe, &self.config)?;
                    GradientArray::from_signal_array(&array, self.config.half_n())
                });
                match result {
                    Ok(grad) => Prep::Grad(grad),
                    Err(e) => Prep::Failed(e, spans),
                }
            })
            .collect();

        // One forward for every probe that survived preprocessing. A
        // batch-level failure (shape mismatch) falls back to per-probe
        // verification below rather than failing the whole policy.
        let grads: Vec<&GradientArray> = preps
            .iter()
            .filter_map(|p| match p {
                Prep::Grad(g) => Some(g),
                _ => None,
            })
            .collect();
        let mut batch_prints = self
            .extractor
            .extract_prints_batch(&grads)
            .ok()
            .map(Vec::into_iter);

        let mut rejects: Vec<String> = Vec::new();
        let mut attempts = 0usize;
        for (i, probe) in considered.iter().enumerate() {
            attempts += 1;
            let report = &reports[i];
            match &preps[i] {
                Prep::Grad(_) => {
                    let print = batch_prints.as_mut().and_then(Iterator::next);
                    let (result, spans) = mandipass_telemetry::try_capture(|| match &print {
                        Some(print) => self.verify_print(user_id, print, matrix),
                        // Batch extraction failed: per-probe fallback.
                        None => self.verify(user_id, probe, matrix),
                    });
                    match result {
                        Ok(outcome) => {
                            self.finish_policy(attempts, false);
                            return Ok(PolicyDecision {
                                outcome,
                                attempts,
                                degraded: false,
                                rejects,
                            });
                        }
                        Err(e) => {
                            self.count_reject("pipeline", e.label());
                            self.enclave.record_quality_reject(user_id, e.label());
                            let label = format!("pipeline:{}", e.label());
                            self.monitor.observe_reject(&label);
                            self.record_reject_flight(user_id, &label, report, spans);
                            rejects.push(label);
                            continue;
                        }
                    }
                }
                Prep::Failed(e, spans) => {
                    // The sequential path loads the template before its
                    // pipeline fails; replay that enclave access so the
                    // audit trail stays identical.
                    let _ = self.enclave.load(user_id);
                    self.count_reject("pipeline", e.label());
                    self.enclave.record_quality_reject(user_id, e.label());
                    let label = format!("pipeline:{}", e.label());
                    self.monitor.observe_reject(&label);
                    self.record_reject_flight(user_id, &label, report, spans.clone());
                    rejects.push(label);
                    continue;
                }
                Prep::Gated => {}
            }
            if policy.allow_degraded && report.degraded_viable() {
                let (result, spans) = mandipass_telemetry::try_capture(|| {
                    self.verify_degraded(user_id, probe, matrix, policy)
                });
                match result {
                    Ok(outcome) => {
                        mandipass_telemetry::counter!("verify.degraded").inc();
                        self.finish_policy(attempts, true);
                        return Ok(PolicyDecision {
                            outcome,
                            attempts,
                            degraded: true,
                            rejects,
                        });
                    }
                    Err(e) => {
                        self.count_reject("pipeline", e.label());
                        self.enclave.record_quality_reject(user_id, e.label());
                        let label = format!("pipeline:{}", e.label());
                        self.monitor.observe_reject(&label);
                        self.record_reject_flight(user_id, &label, report, spans);
                        rejects.push(label);
                        continue;
                    }
                }
            }
            for reason in &report.reasons {
                self.count_reject("quality", reason.label());
                self.enclave.record_quality_reject(user_id, reason.label());
            }
            let labels: Vec<&str> = report.reasons.iter().map(|r| r.label()).collect();
            let label = format!("quality:{}", labels.join("+"));
            self.monitor.observe_reject(&label);
            self.record_reject_flight(user_id, &label, report, None);
            rejects.push(label);
        }
        self.finish_policy(attempts, false);
        let mut flight = VerifyFlight::new(user_id, FlightOutcome::Exhausted);
        flight.attempts = attempts;
        flight.rejects = rejects.clone();
        self.monitor.record_flight(flight);
        Err(MandiPassError::RetriesExhausted {
            attempts,
            reasons: rejects,
        })
    }

    /// Verifies a precomputed MandiblePrint against `user_id`'s stored
    /// template — the tail of [`MandiPass::verify`] after extraction,
    /// used by the batched policy walk (which extracts prints up front).
    fn verify_print(
        &self,
        user_id: u32,
        print: &MandiblePrint,
        matrix: &GaussianMatrix,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify");
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?
        };
        let cancelable = matrix.transform(print)?;
        let outcome = self.decide(&template, &cancelable);
        self.finish_verify(user_id, outcome);
        Ok(outcome)
    }

    /// Records one rejected policy attempt in the flight recorder,
    /// attaching the quality report and (when one was captured) the
    /// attempt's span tree as structured detail.
    fn record_reject_flight(
        &self,
        user_id: u32,
        label: &str,
        report: &quality::QualityReport,
        spans: Option<SpanTree>,
    ) {
        let mut flight = VerifyFlight::new(user_id, FlightOutcome::Rejected);
        flight.rejects.push(label.to_string());
        let mut detail = vec![("quality".to_string(), report.to_json())];
        if let Some(tree) = spans {
            detail.push(("spans".to_string(), tree.to_json()));
        }
        flight.detail = Value::Object(detail);
        self.monitor.record_flight(flight);
    }

    /// Accelerometer-only verification under a tightened threshold: the
    /// gyro axes are masked out of the pipeline and the accept threshold
    /// is scaled by `policy.degraded_threshold_scale`.
    fn verify_degraded(
        &self,
        user_id: u32,
        probe: &Recording,
        matrix: &GaussianMatrix,
        policy: &VerifyPolicy,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify_degraded");
        // Prefer the accelerometer-only template sealed at enrolment —
        // the like-for-like comparison — and only fall back to the
        // primary (six-axis) template for enrolments that predate it.
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            match self.enclave.load_degraded(user_id) {
                Some(t) => t,
                None => self.enclave.load(user_id)?,
            }
        };
        let config = self.degraded_config(policy.degraded_threshold_scale);
        let print = self.extract_print_with_config(probe, &config)?;
        let cancelable = matrix.transform(&print)?;
        let distance = cosine_distance(template.as_slice(), cancelable.as_slice());
        let outcome = VerifyOutcome {
            accepted: accepts(distance, config.threshold),
            distance,
            threshold: config.threshold,
        };
        self.enclave
            .record_degraded_verify(user_id, outcome.accepted, outcome.distance);
        self.monitor
            .observe_decision(outcome.distance, outcome.accepted, true);
        let mut flight = VerifyFlight::new(user_id, FlightOutcome::Degraded);
        flight.distance = Some(outcome.distance);
        flight.threshold = Some(outcome.threshold);
        self.monitor.record_flight(flight);
        if outcome.accepted {
            mandipass_telemetry::counter!("verify.accept").inc();
        } else {
            mandipass_telemetry::counter!("verify.reject").inc();
        }
        Ok(outcome)
    }

    /// The accelerometer-only pipeline configuration used for both the
    /// degraded enrolment template and degraded verification; the accept
    /// threshold is scaled by `threshold_scale`.
    fn degraded_config(&self, threshold_scale: f64) -> PipelineConfig {
        PipelineConfig {
            axis_mask: [true, true, true, false, false, false],
            threshold: self.config.threshold * threshold_scale,
            ..self.config.clone()
        }
    }

    /// Per-reason reject counters use dynamically named metrics (the
    /// `counter!` macro caches one handle per call site, which cannot
    /// key on the reason).
    fn count_reject(&self, family: &str, label: &str) {
        mandipass_telemetry::metrics()
            .counter(&format!("{family}.reject.{label}"))
            .inc();
    }

    fn finish_policy(&self, attempts: usize, degraded: bool) {
        mandipass_telemetry::histogram!("verify.retry_depth").observe(attempts as f64);
        if degraded {
            mandipass_telemetry::counter!("verify.degraded_decisions").inc();
        }
    }

    /// Revokes `user_id`'s template, returning the old template (the
    /// artefact a replay attacker may have stolen before revocation).
    pub fn revoke(&mut self, user_id: u32) -> Option<CancelableTemplate> {
        self.enclave.revoke(user_id)
    }

    fn decide(&self, template: &CancelableTemplate, probe: &CancelableTemplate) -> VerifyOutcome {
        let _span = mandipass_telemetry::span("similarity");
        let distance = cosine_distance(template.as_slice(), probe.as_slice());
        VerifyOutcome {
            accepted: accepts(distance, self.config.threshold),
            distance,
            threshold: self.config.threshold,
        }
    }

    /// Common verify epilogue: audit-trail entry + accept/reject
    /// counters + monitor decision window (and a flight record when the
    /// probe was rejected).
    fn finish_verify(&self, user_id: u32, outcome: VerifyOutcome) {
        self.enclave
            .record_verify(user_id, outcome.accepted, outcome.distance);
        self.monitor
            .observe_decision(outcome.distance, outcome.accepted, false);
        if outcome.accepted {
            mandipass_telemetry::counter!("verify.accept").inc();
        } else {
            mandipass_telemetry::counter!("verify.reject").inc();
            let mut flight = VerifyFlight::new(user_id, FlightOutcome::Rejected);
            flight.distance = Some(outcome.distance);
            flight.threshold = Some(outcome.threshold);
            self.monitor.record_flight(flight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{TrainingConfig, VspTrainer};
    use mandipass_imu_sim::{Condition, Population, Recorder};

    /// The serving layer shares one enrolled `MandiPass` read-only
    /// across worker threads, so the deployed type must stay `Send +
    /// Sync` — this compile-time audit pins it (the `nn::Layer` trait
    /// carries the bounds the boxed extractor layers need).
    #[test]
    fn deployment_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MandiPass>();
        assert_send_sync::<SecureEnclave>();
        assert_send_sync::<VerifyPolicy>();
    }

    /// A small trained deployment shared by the tests in this module.
    fn trained_system() -> (MandiPass, Population, Recorder) {
        let pop = Population::generate(6, 77);
        let recorder = Recorder::default();
        let trainer = VspTrainer::new(TrainingConfig {
            seconds_per_person: 4.0,
            epochs: 6,
            ..TrainingConfig::fast_demo()
        });
        // Users 2.. are "hired people"; users 0 and 1 stay unseen.
        let extractor = trainer.train(&pop.users()[2..], &recorder).unwrap();
        (
            MandiPass::new(extractor, PipelineConfig::default()),
            pop,
            recorder,
        )
    }

    #[test]
    fn enroll_verify_accepts_genuine_user() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(1, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 1000 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();
        assert!(system.enclave().contains(user.id));

        let mut accepted = 0;
        for s in 0..10 {
            let probe = recorder.record(user, Condition::Normal, 2000 + s);
            let outcome = system.verify(user.id, &probe, &matrix).unwrap();
            if outcome.accepted {
                accepted += 1;
            }
        }
        assert!(accepted >= 8, "only {accepted}/10 genuine probes accepted");
    }

    #[test]
    fn impostor_distance_exceeds_genuine_distance() {
        let (mut system, pop, recorder) = trained_system();
        let victim = &pop.users()[0];
        let attacker = &pop.users()[1];
        let matrix = GaussianMatrix::generate(2, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(victim, Condition::Normal, 3000 + s))
            .collect();
        system.enroll(victim.id, &enrolment, &matrix).unwrap();

        let genuine: f64 = (0..5)
            .map(|s| {
                let probe = recorder.record(victim, Condition::Normal, 4000 + s);
                system.verify(victim.id, &probe, &matrix).unwrap().distance
            })
            .sum::<f64>()
            / 5.0;
        let impostor: f64 = (0..5)
            .map(|s| {
                let probe = recorder.record(attacker, Condition::Normal, 5000 + s);
                system.verify(victim.id, &probe, &matrix).unwrap().distance
            })
            .sum::<f64>()
            / 5.0;
        assert!(
            genuine < impostor,
            "genuine mean {genuine:.3} not below impostor mean {impostor:.3}"
        );
    }

    #[test]
    fn unenrolled_user_is_rejected_with_error() {
        let (system, pop, recorder) = trained_system();
        let probe = recorder.record(&pop.users()[0], Condition::Normal, 1);
        let matrix = GaussianMatrix::generate(3, system.embedding_dim());
        assert!(matches!(
            system.verify(9, &probe, &matrix),
            Err(MandiPassError::NotEnrolled { user_id: 9 })
        ));
    }

    #[test]
    fn enrolment_with_no_usable_recordings_fails() {
        let (mut system, pop, recorder) = trained_system();
        let matrix = GaussianMatrix::generate(4, system.embedding_dim());
        // Make detection impossible, so every probe is unusable.
        system.config_mut().detector_start_threshold = 1e12;
        let recs = vec![recorder.record(&pop.users()[0], Condition::Normal, 1)];
        assert!(matches!(
            system.enroll(0, &recs, &matrix),
            Err(MandiPassError::NoEnrolmentData)
        ));
    }

    #[test]
    fn revocation_removes_template() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(5, system.embedding_dim());
        let recs: Vec<_> = (0..3)
            .map(|s| recorder.record(user, Condition::Normal, 6000 + s))
            .collect();
        system.enroll(user.id, &recs, &matrix).unwrap();
        let stolen = system.revoke(user.id);
        assert!(stolen.is_some());
        let probe = recorder.record(user, Condition::Normal, 6100);
        assert!(matches!(
            system.verify(user.id, &probe, &matrix),
            Err(MandiPassError::NotEnrolled { .. })
        ));
    }

    #[test]
    fn policy_accepts_genuine_user_on_first_clean_probe() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(11, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 8000 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();
        let probes: Vec<_> = (0..3)
            .map(|s| recorder.record(user, Condition::Normal, 8100 + s))
            .collect();
        let decision = system
            .verify_with_policy(user.id, &probes, &matrix, &VerifyPolicy::default())
            .unwrap();
        assert_eq!(decision.attempts, 1);
        assert!(!decision.degraded);
        assert!(decision.rejects.is_empty());
    }

    #[test]
    fn policy_retries_past_bad_probe_and_audits_reason() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(12, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 8200 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();

        let good = recorder.record(user, Condition::Normal, 8300);
        let bad = {
            let axes = vec![vec![f64::NAN; good.len()]; 6];
            Recording::from_parts(
                good.sample_rate_hz(),
                axes,
                good.condition(),
                good.user_id(),
            )
            .unwrap()
        };
        let decision = system
            .verify_with_policy(user.id, &[bad, good], &matrix, &VerifyPolicy::default())
            .unwrap();
        assert_eq!(decision.attempts, 2);
        assert_eq!(decision.rejects.len(), 1);
        assert!(decision.rejects[0].starts_with("quality:"));
        // The rejection is visible in the audit trail with its reason.
        let rejections: Vec<_> = system
            .enclave()
            .audit_events_for(user.id)
            .into_iter()
            .filter(|e| e.kind == crate::enclave::AuditKind::QualityReject)
            .collect();
        assert!(!rejections.is_empty());
        assert!(rejections.iter().any(|e| e.reason == Some("non_finite")));
    }

    #[test]
    fn policy_degrades_to_accel_only_for_stuck_gyro() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(13, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 8400 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();

        let clean = recorder.record(user, Condition::Normal, 8500);
        let mut axes = clean.axes().to_vec();
        let frozen = axes[3][0];
        for v in axes[3].iter_mut() {
            *v = frozen;
        }
        let gyro_fault = Recording::from_parts(
            clean.sample_rate_hz(),
            axes,
            clean.condition(),
            clean.user_id(),
        )
        .unwrap();
        let decision = system
            .verify_with_policy(user.id, &[gyro_fault], &matrix, &VerifyPolicy::default())
            .unwrap();
        assert!(decision.degraded);
        // Degraded mode tightens the threshold.
        assert!(decision.outcome.threshold < system.config().threshold);
        let trail = system.enclave().audit_events_for(user.id);
        assert!(trail
            .iter()
            .any(|e| e.kind == crate::enclave::AuditKind::DegradedVerify));
    }

    #[test]
    fn policy_exhausts_retries_with_typed_reasons() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(14, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 8600 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();

        let template = recorder.record(user, Condition::Normal, 8700);
        let garbage: Vec<Recording> = (0..4)
            .map(|_| {
                let axes = vec![vec![f64::INFINITY; template.len()]; 6];
                Recording::from_parts(template.sample_rate_hz(), axes, template.condition(), 0)
                    .unwrap()
            })
            .collect();
        let err = system
            .verify_with_policy(user.id, &garbage, &matrix, &VerifyPolicy::default())
            .unwrap_err();
        match err {
            MandiPassError::RetriesExhausted { attempts, reasons } => {
                assert_eq!(attempts, 3); // default max_attempts caps at 3
                assert_eq!(reasons.len(), 3);
                assert!(reasons.iter().all(|r| r.contains("non_finite")));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn policy_flights_inherit_the_active_trace_id() {
        let (mut system, pop, recorder) = trained_system();
        let monitor: &'static mandipass_telemetry::Monitor =
            Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
        system.set_monitor(monitor);
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(16, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 8900 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();

        let template = recorder.record(user, Condition::Normal, 8950);
        let axes = vec![vec![f64::INFINITY; template.len()]; 6];
        let garbage =
            Recording::from_parts(template.sample_rate_hz(), axes, template.condition(), 0)
                .unwrap();
        let trace_id = 0xfeed_0000_0000_0042_u64;
        {
            let _scope = mandipass_telemetry::trace::scope(trace_id);
            let _ =
                system.verify_with_policy(user.id, &[garbage], &matrix, &VerifyPolicy::default());
        }
        let flights = monitor.flights();
        assert!(!flights.is_empty(), "exhausted policy run records flights");
        assert!(
            flights.iter().all(|f| f.trace_id == Some(trace_id)),
            "policy-path flights must carry the active trace id"
        );
        // Outside any scope, fresh flights stay untagged.
        assert!(mandipass_telemetry::trace::current().is_none());
    }

    #[test]
    fn policy_requires_enrolment_before_consuming_probes() {
        let (system, pop, recorder) = trained_system();
        let matrix = GaussianMatrix::generate(15, system.embedding_dim());
        let probe = recorder.record(&pop.users()[0], Condition::Normal, 8800);
        assert!(matches!(
            system.verify_with_policy(42, &[probe], &matrix, &VerifyPolicy::default()),
            Err(MandiPassError::NotEnrolled { user_id: 42 })
        ));
    }

    #[test]
    fn verify_cancelable_accepts_matching_template() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(6, system.embedding_dim());
        let recs: Vec<_> = (0..3)
            .map(|s| recorder.record(user, Condition::Normal, 7000 + s))
            .collect();
        system.enroll(user.id, &recs, &matrix).unwrap();
        // Presenting the enclave's own template verbatim: a replay before
        // revocation, which trivially matches (distance 0).
        let template = system.enclave().load(user.id).unwrap();
        let outcome = system.verify_cancelable(user.id, &template).unwrap();
        assert!(outcome.accepted);
        assert!(outcome.distance < 1e-9);
    }
}
