//! The registration/verification API (§III system overview).
//!
//! Registration: the user hums "EMM", the probe runs through
//! preprocessing and the extractor, the MandiblePrint is transformed by
//! the user's Gaussian matrix, and the cancelable template is stored in
//! the secure enclave. Verification repeats the pipeline on a fresh probe
//! and accepts when the cosine distance to the stored template falls
//! below the operating threshold.

use mandipass_imu_sim::Recording;

use crate::config::PipelineConfig;
use crate::enclave::SecureEnclave;
use crate::error::MandiPassError;
use crate::extractor::BiometricExtractor;
use crate::gradient_array::GradientArray;
use crate::preprocess::preprocess;
use crate::similarity::{accepts, cosine_distance};
use crate::template::{CancelableTemplate, GaussianMatrix, MandiblePrint};

/// Result of one verification request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyOutcome {
    /// Whether the request was accepted as the genuine user.
    pub accepted: bool,
    /// Cosine distance between the probe's cancelable print and the
    /// stored template (lower = more similar).
    pub distance: f64,
    /// The threshold the decision was made against.
    pub threshold: f64,
}

/// A complete MandiPass deployment: trained extractor + pipeline
/// configuration + secure enclave.
#[derive(Debug)]
pub struct MandiPass {
    extractor: BiometricExtractor,
    config: PipelineConfig,
    enclave: SecureEnclave,
}

impl MandiPass {
    /// Assembles a deployment around a (typically VSP-trained) extractor.
    pub fn new(extractor: BiometricExtractor, config: PipelineConfig) -> Self {
        MandiPass {
            extractor,
            config,
            enclave: SecureEnclave::new(),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Mutable pipeline configuration (e.g. to recalibrate the threshold).
    pub fn config_mut(&mut self) -> &mut PipelineConfig {
        &mut self.config
    }

    /// The MandiblePrint dimensionality of the deployed extractor.
    pub fn embedding_dim(&self) -> usize {
        self.extractor.embedding_dim()
    }

    /// The template store.
    pub fn enclave(&self) -> &SecureEnclave {
        &self.enclave
    }

    /// Extracts the (pre-transform) MandiblePrint of one raw recording.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and extraction failures.
    pub fn extract_print(&self, recording: &Recording) -> Result<MandiblePrint, MandiPassError> {
        let _span = mandipass_telemetry::span("extract_print");
        let array = preprocess(recording, &self.config)?;
        let grad = GradientArray::from_signal_array(&array, self.config.half_n());
        let prints = self.extractor.extract(&[&grad])?;
        Ok(prints
            .into_iter()
            .next()
            .expect("one input yields one print"))
    }

    /// Registers `user_id` from one or more enrolment recordings under
    /// the user's Gaussian matrix. The MandiblePrints are averaged, then
    /// transformed, then sealed in the enclave.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NoEnrolmentData`] when every recording
    /// fails preprocessing, and propagates transform dimension errors.
    pub fn enroll(
        &mut self,
        user_id: u32,
        recordings: &[Recording],
        matrix: &GaussianMatrix,
    ) -> Result<(), MandiPassError> {
        let _span = mandipass_telemetry::span("enroll");
        let mut prints = Vec::with_capacity(recordings.len());
        for rec in recordings {
            match self.extract_print(rec) {
                Ok(p) => prints.push(p),
                Err(MandiPassError::Dsp(_)) => continue, // unusable probe
                Err(e) => return Err(e),
            }
        }
        let mean = MandiblePrint::mean(&prints)?;
        let template = matrix.transform(&mean)?;
        self.enclave.store(user_id, template);
        Ok(())
    }

    /// Verifies a probe recording against `user_id`'s stored template.
    ///
    /// # Errors
    ///
    /// * [`MandiPassError::NotEnrolled`] when no template exists.
    /// * [`MandiPassError::Dsp`] when the probe contains no detectable
    ///   vibration (e.g. a zero-effort attacker who does not hum).
    pub fn verify(
        &self,
        user_id: u32,
        probe: &Recording,
        matrix: &GaussianMatrix,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify");
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?
        };
        let print = self.extract_print(probe)?;
        let cancelable = matrix.transform(&print)?;
        let outcome = self.decide(&template, &cancelable);
        self.finish_verify(user_id, outcome);
        Ok(outcome)
    }

    /// Compares a raw cancelable vector against the stored template —
    /// the code path a replay attacker exercises by exhibiting a stolen
    /// template directly.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NotEnrolled`] when no template exists.
    pub fn verify_cancelable(
        &self,
        user_id: u32,
        presented: &CancelableTemplate,
    ) -> Result<VerifyOutcome, MandiPassError> {
        let _span = mandipass_telemetry::span("verify");
        let template = {
            let _span = mandipass_telemetry::span("enclave_load");
            self.enclave.load(user_id)?
        };
        let outcome = self.decide(&template, presented);
        self.finish_verify(user_id, outcome);
        Ok(outcome)
    }

    /// Revokes `user_id`'s template, returning the old template (the
    /// artefact a replay attacker may have stolen before revocation).
    pub fn revoke(&mut self, user_id: u32) -> Option<CancelableTemplate> {
        self.enclave.revoke(user_id)
    }

    fn decide(&self, template: &CancelableTemplate, probe: &CancelableTemplate) -> VerifyOutcome {
        let _span = mandipass_telemetry::span("similarity");
        let distance = cosine_distance(template.as_slice(), probe.as_slice());
        VerifyOutcome {
            accepted: accepts(distance, self.config.threshold),
            distance,
            threshold: self.config.threshold,
        }
    }

    /// Common verify epilogue: audit-trail entry + accept/reject counters.
    fn finish_verify(&self, user_id: u32, outcome: VerifyOutcome) {
        self.enclave
            .record_verify(user_id, outcome.accepted, outcome.distance);
        if outcome.accepted {
            mandipass_telemetry::counter!("verify.accept").inc();
        } else {
            mandipass_telemetry::counter!("verify.reject").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{TrainingConfig, VspTrainer};
    use mandipass_imu_sim::{Condition, Population, Recorder};

    /// A small trained deployment shared by the tests in this module.
    fn trained_system() -> (MandiPass, Population, Recorder) {
        let pop = Population::generate(6, 77);
        let recorder = Recorder::default();
        let trainer = VspTrainer::new(TrainingConfig {
            seconds_per_person: 4.0,
            epochs: 6,
            ..TrainingConfig::fast_demo()
        });
        // Users 2.. are "hired people"; users 0 and 1 stay unseen.
        let extractor = trainer.train(&pop.users()[2..], &recorder).unwrap();
        (
            MandiPass::new(extractor, PipelineConfig::default()),
            pop,
            recorder,
        )
    }

    #[test]
    fn enroll_verify_accepts_genuine_user() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(1, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(user, Condition::Normal, 1000 + s))
            .collect();
        system.enroll(user.id, &enrolment, &matrix).unwrap();
        assert!(system.enclave().contains(user.id));

        let mut accepted = 0;
        for s in 0..10 {
            let probe = recorder.record(user, Condition::Normal, 2000 + s);
            let outcome = system.verify(user.id, &probe, &matrix).unwrap();
            if outcome.accepted {
                accepted += 1;
            }
        }
        assert!(accepted >= 8, "only {accepted}/10 genuine probes accepted");
    }

    #[test]
    fn impostor_distance_exceeds_genuine_distance() {
        let (mut system, pop, recorder) = trained_system();
        let victim = &pop.users()[0];
        let attacker = &pop.users()[1];
        let matrix = GaussianMatrix::generate(2, system.embedding_dim());
        let enrolment: Vec<_> = (0..4)
            .map(|s| recorder.record(victim, Condition::Normal, 3000 + s))
            .collect();
        system.enroll(victim.id, &enrolment, &matrix).unwrap();

        let genuine: f64 = (0..5)
            .map(|s| {
                let probe = recorder.record(victim, Condition::Normal, 4000 + s);
                system.verify(victim.id, &probe, &matrix).unwrap().distance
            })
            .sum::<f64>()
            / 5.0;
        let impostor: f64 = (0..5)
            .map(|s| {
                let probe = recorder.record(attacker, Condition::Normal, 5000 + s);
                system.verify(victim.id, &probe, &matrix).unwrap().distance
            })
            .sum::<f64>()
            / 5.0;
        assert!(
            genuine < impostor,
            "genuine mean {genuine:.3} not below impostor mean {impostor:.3}"
        );
    }

    #[test]
    fn unenrolled_user_is_rejected_with_error() {
        let (system, pop, recorder) = trained_system();
        let probe = recorder.record(&pop.users()[0], Condition::Normal, 1);
        let matrix = GaussianMatrix::generate(3, system.embedding_dim());
        assert!(matches!(
            system.verify(9, &probe, &matrix),
            Err(MandiPassError::NotEnrolled { user_id: 9 })
        ));
    }

    #[test]
    fn enrolment_with_no_usable_recordings_fails() {
        let (mut system, pop, recorder) = trained_system();
        let matrix = GaussianMatrix::generate(4, system.embedding_dim());
        // Make detection impossible, so every probe is unusable.
        system.config_mut().detector_start_threshold = 1e12;
        let recs = vec![recorder.record(&pop.users()[0], Condition::Normal, 1)];
        assert!(matches!(
            system.enroll(0, &recs, &matrix),
            Err(MandiPassError::NoEnrolmentData)
        ));
    }

    #[test]
    fn revocation_removes_template() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(5, system.embedding_dim());
        let recs: Vec<_> = (0..3)
            .map(|s| recorder.record(user, Condition::Normal, 6000 + s))
            .collect();
        system.enroll(user.id, &recs, &matrix).unwrap();
        let stolen = system.revoke(user.id);
        assert!(stolen.is_some());
        let probe = recorder.record(user, Condition::Normal, 6100);
        assert!(matches!(
            system.verify(user.id, &probe, &matrix),
            Err(MandiPassError::NotEnrolled { .. })
        ));
    }

    #[test]
    fn verify_cancelable_accepts_matching_template() {
        let (mut system, pop, recorder) = trained_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(6, system.embedding_dim());
        let recs: Vec<_> = (0..3)
            .map(|s| recorder.record(user, Condition::Normal, 7000 + s))
            .collect();
        system.enroll(user.id, &recs, &matrix).unwrap();
        // Presenting the enclave's own template verbatim: a replay before
        // revocation, which trivially matches (distance 0).
        let template = system.enclave().load(user.id).unwrap();
        let outcome = system.verify_cancelable(user.id, &template).unwrap();
        assert!(outcome.accepted);
        assert!(outcome.distance < 1e-9);
    }
}
