//! MandiblePrints and cancelable templates (§VI).
//!
//! Replay defence: before a MandiblePrint is stored, it is multiplied by
//! a user-chosen **Gaussian matrix** `G`. The stored value `x' = x·G` is
//! *cancelable*: if it leaks, the user switches to a fresh matrix and the
//! leaked template no longer matches anything the verifier computes —
//! while genuine verification is unaffected because random projection
//! approximately preserves angles (Johnson–Lindenstrauss), so the cosine
//! distance between two prints transformed by the *same* matrix stays
//! close to the original.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;
use mandipass_util::rand_distr::{Distribution, Normal};

use crate::error::MandiPassError;

/// A biometric vector produced by the extractor (sigmoid outputs, each
/// component in `(0, 1)`; paper default dimension 512).
#[derive(Debug, Clone, PartialEq)]
pub struct MandiblePrint(Vec<f32>);

impl MandiblePrint {
    /// Wraps an extractor output vector.
    pub fn new(values: Vec<f32>) -> Self {
        MandiblePrint(values)
    }

    /// The vector components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Mean of several prints (used to enrol from multiple probes).
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NoEnrolmentData`] for an empty slice and
    /// [`MandiPassError::DimensionMismatch`] for ragged inputs.
    pub fn mean(prints: &[MandiblePrint]) -> Result<MandiblePrint, MandiPassError> {
        let first = prints.first().ok_or(MandiPassError::NoEnrolmentData)?;
        let d = first.dim();
        let mut acc = vec![0.0f32; d];
        for p in prints {
            if p.dim() != d {
                return Err(MandiPassError::DimensionMismatch {
                    expected: d,
                    got: p.dim(),
                });
            }
            for (a, &v) in acc.iter_mut().zip(p.as_slice()) {
                *a += v;
            }
        }
        let n = prints.len() as f32;
        for a in &mut acc {
            *a /= n;
        }
        Ok(MandiblePrint(acc))
    }
}

/// A user-revocable Gaussian projection matrix, stored compactly as its
/// generation seed (the matrix is re-derived on demand; entries are
/// `N(0, 1/√dim)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaussianMatrix {
    seed: u64,
    dim: usize,
}

impl GaussianMatrix {
    /// Creates the matrix identity for `(seed, dim)`. A square `dim×dim`
    /// projection keeps the template the same size as the print (the
    /// paper's ≈ 1.8 KB template is 512 fp values, with some metadata).
    pub fn generate(seed: u64, dim: usize) -> Self {
        GaussianMatrix { seed, dim }
    }

    /// The generation seed (the user's revocable secret).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Projection dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Materialises the matrix entries, row-major `dim × dim`.
    fn entries(&self) -> Vec<f32> {
        if self.dim == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6761_7573_7373);
        // `dim >= 1`, so the standard deviation is finite and positive
        // and the distribution is always constructible.
        let Ok(normal) = Normal::new(0.0, 1.0 / (self.dim as f64).sqrt()) else {
            return vec![0.0; self.dim * self.dim];
        };
        (0..self.dim * self.dim)
            .map(|_| normal.sample(&mut rng) as f32)
            .collect()
    }

    /// Transforms a print into a cancelable template: `x' = x·G`.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::DimensionMismatch`] when the print's
    /// dimension differs from the matrix dimension.
    pub fn transform(&self, print: &MandiblePrint) -> Result<CancelableTemplate, MandiPassError> {
        let _span = mandipass_telemetry::span("template_transform");
        if print.dim() != self.dim {
            return Err(MandiPassError::DimensionMismatch {
                expected: self.dim,
                got: print.dim(),
            });
        }
        let g = self.entries();
        let x = print.as_slice();
        let mut out = vec![0.0f32; self.dim];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (i, &xv) in x.iter().enumerate() {
                acc += xv * g[i * self.dim + j];
            }
            *o = acc;
        }
        Ok(CancelableTemplate {
            values: out,
            matrix_seed: self.seed,
        })
    }
}

/// A Gaussian-transformed MandiblePrint — safe to store at rest; revoked
/// by switching to a new [`GaussianMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct CancelableTemplate {
    values: Vec<f32>,
    matrix_seed: u64,
}

impl CancelableTemplate {
    /// The transformed vector.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Seed of the matrix that produced this template (metadata used to
    /// detect stale templates after revocation).
    pub fn matrix_seed(&self) -> u64 {
        self.matrix_seed
    }

    /// Serialised size in bytes (values + seed). The paper reports
    /// ≈ 1.8 KB per template at 512 dimensions.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>() + std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine_distance;
    use mandipass_util::rand::Rng;

    fn random_print(seed: u64, dim: usize) -> MandiblePrint {
        let mut rng = StdRng::seed_from_u64(seed);
        MandiblePrint::new((0..dim).map(|_| rng.gen_range(0.0f32..1.0)).collect())
    }

    fn perturbed(print: &MandiblePrint, seed: u64, sigma: f32) -> MandiblePrint {
        let mut rng = StdRng::seed_from_u64(seed);
        MandiblePrint::new(
            print
                .as_slice()
                .iter()
                .map(|&v| (v + rng.gen_range(-sigma..sigma)).clamp(0.0, 1.0))
                .collect(),
        )
    }

    #[test]
    fn same_matrix_preserves_genuine_similarity() {
        let g = GaussianMatrix::generate(42, 256);
        let a = random_print(1, 256);
        let b = perturbed(&a, 2, 0.05);
        let raw = cosine_distance(a.as_slice(), b.as_slice());
        let ta = g.transform(&a).unwrap();
        let tb = g.transform(&b).unwrap();
        let transformed = cosine_distance(ta.as_slice(), tb.as_slice());
        // Random projection approximately preserves angles.
        assert!(
            (transformed - raw).abs() < 0.15,
            "raw {raw:.3} vs transformed {transformed:.3}"
        );
        assert!(transformed < 0.2, "genuine pair too distant: {transformed}");
    }

    #[test]
    fn different_matrices_break_similarity() {
        // The §VI replay defence: the same print under two different
        // matrices must be far apart (the stolen template fails).
        let g1 = GaussianMatrix::generate(1, 256);
        let g2 = GaussianMatrix::generate(2, 256);
        let p = random_print(3, 256);
        let t1 = g1.transform(&p).unwrap();
        let t2 = g2.transform(&p).unwrap();
        let d = cosine_distance(t1.as_slice(), t2.as_slice());
        assert!(d > 0.5485, "cross-matrix distance {d} below threshold");
    }

    #[test]
    fn transform_is_deterministic() {
        let g = GaussianMatrix::generate(9, 64);
        let p = random_print(4, 64);
        assert_eq!(g.transform(&p).unwrap(), g.transform(&p).unwrap());
    }

    #[test]
    fn impostor_separation_survives_projection() {
        let g = GaussianMatrix::generate(5, 256);
        let a = random_print(10, 256);
        let b = random_print(11, 256);
        let raw = cosine_distance(a.as_slice(), b.as_slice());
        let ta = g.transform(&a).unwrap();
        let tb = g.transform(&b).unwrap();
        let transformed = cosine_distance(ta.as_slice(), tb.as_slice());
        assert!(
            (transformed - raw).abs() < 0.25,
            "raw {raw} vs {transformed}"
        );
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let g = GaussianMatrix::generate(6, 64);
        let p = random_print(12, 32);
        assert!(matches!(
            g.transform(&p),
            Err(MandiPassError::DimensionMismatch {
                expected: 64,
                got: 32
            })
        ));
    }

    #[test]
    fn template_storage_matches_paper_ballpark() {
        let g = GaussianMatrix::generate(7, 512);
        let p = random_print(13, 512);
        let t = g.transform(&p).unwrap();
        // 512 × 4 bytes + seed = 2056 bytes ≈ the paper's "about 1.8 KB".
        assert_eq!(t.storage_bytes(), 512 * 4 + 8);
        assert_eq!(t.matrix_seed(), 7);
    }

    #[test]
    fn mean_of_prints_averages_componentwise() {
        let a = MandiblePrint::new(vec![0.0, 1.0]);
        let b = MandiblePrint::new(vec![1.0, 0.0]);
        let m = MandiblePrint::mean(&[a, b]).unwrap();
        assert_eq!(m.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn mean_rejects_empty_and_ragged() {
        assert!(matches!(
            MandiblePrint::mean(&[]),
            Err(MandiPassError::NoEnrolmentData)
        ));
        let a = MandiblePrint::new(vec![0.0, 1.0]);
        let b = MandiblePrint::new(vec![1.0]);
        assert!(matches!(
            MandiblePrint::mean(&[a, b]),
            Err(MandiPassError::DimensionMismatch { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::similarity::cosine_distance;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn projection_roughly_preserves_distance(
            seed_a in 0u64..1000,
            seed_b in 1000u64..2000,
            mseed in 0u64..100,
        ) {
            let dim = 128;
            let mut ra = mandipass_util::rand::rngs::StdRng::seed_from_u64(seed_a);
            let mut rb = mandipass_util::rand::rngs::StdRng::seed_from_u64(seed_b);
            use mandipass_util::rand::Rng;
            let a = MandiblePrint::new((0..dim).map(|_| ra.gen_range(0.0f32..1.0)).collect());
            let b = MandiblePrint::new((0..dim).map(|_| rb.gen_range(0.0f32..1.0)).collect());
            let g = GaussianMatrix::generate(mseed, dim);
            let raw = cosine_distance(a.as_slice(), b.as_slice());
            let t = cosine_distance(
                g.transform(&a).unwrap().as_slice(),
                g.transform(&b).unwrap().as_slice(),
            );
            prop_assert!((raw - t).abs() < 0.35, "raw {} vs transformed {}", raw, t);
        }
    }
}
