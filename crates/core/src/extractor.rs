//! The §V.B biometric extractor: a two-branch CNN.
//!
//! Each direction plane of the gradient array feeds its own branch of
//! three [Conv 3×3, stride 1×2 → BatchNorm → ReLU] blocks; the branch
//! outputs are flattened, concatenated, passed through a fully connected
//! layer and a Sigmoid to yield the *MandiblePrint* vector (paper default
//! 512-d). During training a further fully connected layer projects the
//! biometric onto person-id classes for cross-entropy learning; at
//! deployment the classifier head is ignored and the sigmoid output is
//! the biometric.

use std::cell::{Cell, RefCell};

use mandipass_nn::activation::{ReLU, Sigmoid};
use mandipass_nn::batchnorm::BatchNorm2d;
use mandipass_nn::conv::Conv2d;
use mandipass_nn::flatten::Flatten;
use mandipass_nn::infer::{ArenaStats, InferCtx, Shape};
use mandipass_nn::layer::{Layer, Param};
use mandipass_nn::linear::Linear;
use mandipass_nn::loss::{accuracy, cross_entropy};
use mandipass_nn::sequential::Sequential;
use mandipass_nn::tensor::Tensor;

use crate::error::MandiPassError;
use crate::gradient_array::GradientArray;
use crate::template::MandiblePrint;

thread_local! {
    /// Per-worker scratch arena for the inference fast path. Thread-local
    /// so concurrent verifications never contend on buffers, and the
    /// steady-state zero-allocation property holds per worker.
    static INFER_CTX: RefCell<InferCtx> = RefCell::new(InferCtx::new());
    /// Growth events already published to the telemetry counter, so each
    /// publish adds only the delta.
    static PUBLISHED_GROWTH: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the calling thread's inference arena (for benchmarks and
/// steady-state assertions; serve workers export the same numbers through
/// telemetry gauges after every batch).
pub fn arena_stats() -> ArenaStats {
    INFER_CTX.with(|c| c.borrow().stats())
}

/// Zeroes the calling thread's arena growth counter, marking the start of
/// a steady-state observation window (call after warm-up).
pub fn reset_arena_growth() {
    INFER_CTX.with(|c| c.borrow_mut().reset_growth());
    PUBLISHED_GROWTH.with(|c| c.set(0));
}

/// Exports the arena's high-water mark and pool occupancy as gauges and
/// its growth events as a counter delta.
fn publish_arena_metrics(ctx: &InferCtx) {
    let stats = ctx.stats();
    mandipass_telemetry::gauge!("nn.arena.high_water_bytes").set(stats.high_water_bytes as f64);
    mandipass_telemetry::gauge!("nn.arena.pooled_bytes").set(stats.pooled_bytes as f64);
    mandipass_telemetry::gauge!("nn.arena.pooled_buffers").set(stats.pooled_buffers as f64);
    PUBLISHED_GROWTH.with(|c| {
        let delta = stats.growth_events.saturating_sub(c.get());
        if delta > 0 {
            mandipass_telemetry::counter!("nn.arena.growth_events").add(delta);
        }
        c.set(stats.growth_events);
    });
}

/// Architecture parameters of the biometric extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractorConfig {
    /// Axis rows per direction plane (6 for a full IMU).
    pub axes: usize,
    /// Gradient samples per direction stream (`n/2`; paper: 30).
    pub half_n: usize,
    /// Output channels of the three convolution blocks.
    pub channels: [usize; 3],
    /// MandiblePrint dimensionality (paper default: 512; Fig. 11(c)
    /// sweeps 32–512).
    pub embedding_dim: usize,
    /// Person-id classes of the training head.
    pub classes: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
    /// Whether to use the paper's two-branch architecture (one branch per
    /// vibration direction). `false` builds an equal-parameter-budget
    /// single branch fed both direction planes as channels — the
    /// `ablation_branches` experiment's comparator.
    pub two_branch: bool,
}

impl ExtractorConfig {
    /// The paper's architecture for a cohort of `classes` hired people.
    pub fn paper(classes: usize) -> Self {
        ExtractorConfig {
            axes: 6,
            half_n: 30,
            channels: [8, 16, 32],
            embedding_dim: 512,
            classes,
            seed: 0x6d61_6e64,
            two_branch: true,
        }
    }

    /// A tiny configuration for unit tests (fast to train).
    pub fn tiny(classes: usize) -> Self {
        ExtractorConfig {
            axes: 6,
            half_n: 30,
            channels: [2, 4, 4],
            embedding_dim: 32,
            classes,
            seed: 7,
            two_branch: true,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::InvalidConfig`] for zero-sized fields.
    pub fn validate(&self) -> Result<(), MandiPassError> {
        let bad = |reason: &str| {
            Err(MandiPassError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.axes == 0 || self.half_n == 0 {
            return bad("axes and half_n must be positive");
        }
        if self.channels.contains(&0) {
            return bad("channel counts must be positive");
        }
        if self.embedding_dim == 0 {
            return bad("embedding dimension must be positive");
        }
        if self.classes < 2 {
            return bad("training requires at least two classes");
        }
        Ok(())
    }

    /// Temporal width after the three stride-2 convolutions.
    fn final_width(&self) -> usize {
        let w1 = (self.half_n + 2 - 3) / 2 + 1;
        let w2 = (w1 + 2 - 3) / 2 + 1;
        (w2 + 2 - 3) / 2 + 1
    }

    /// Flattened feature size of one branch.
    fn branch_features(&self) -> usize {
        self.channels[2] * self.axes * self.final_width()
    }
}

/// The two-branch CNN biometric extractor.
#[derive(Debug, Clone)]
pub struct BiometricExtractor {
    config: ExtractorConfig,
    branch_positive: Sequential,
    branch_negative: Option<Sequential>,
    head: Linear,
    head_act: Sigmoid,
    classifier: Linear,
    cached_batch: Option<usize>,
}

/// Splits the stacked `[N, 2, axes, half_n]` input into its positive- and
/// negative-direction planes, one `[N, 1, axes, half_n]` tensor each.
fn split_directions(config: &ExtractorConfig, input: &Tensor) -> (Tensor, Tensor) {
    let n = input.shape()[0];
    let plane = config.axes * config.half_n;
    let mut pos = Tensor::zeros(vec![n, 1, config.axes, config.half_n]);
    let mut neg = Tensor::zeros(vec![n, 1, config.axes, config.half_n]);
    for i in 0..n {
        let base = i * 2 * plane;
        pos.data_mut()[i * plane..(i + 1) * plane]
            .copy_from_slice(&input.data()[base..base + plane]);
        neg.data_mut()[i * plane..(i + 1) * plane]
            .copy_from_slice(&input.data()[base + plane..base + 2 * plane]);
    }
    (pos, neg)
}

fn build_branch(config: &ExtractorConfig, in_channels: usize, seed: u64) -> Sequential {
    let [c1, c2, c3] = config.channels;
    Sequential::new(vec![
        Box::new(Conv2d::new(in_channels, c1, (3, 3), (1, 2), (1, 1), seed)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(c1, c2, (3, 3), (1, 2), (1, 1), seed + 1)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(c2, c3, (3, 3), (1, 2), (1, 1), seed + 2)),
        Box::new(BatchNorm2d::new(c3)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
    ])
}

impl BiometricExtractor {
    /// Builds an untrained extractor.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::InvalidConfig`] when `config` is invalid.
    pub fn new(config: ExtractorConfig) -> Result<Self, MandiPassError> {
        config.validate()?;
        let branch_features = config.branch_features();
        if config.two_branch {
            Ok(BiometricExtractor {
                branch_positive: build_branch(&config, 1, config.seed),
                branch_negative: Some(build_branch(&config, 1, config.seed + 100)),
                head: Linear::new(2 * branch_features, config.embedding_dim, config.seed + 200),
                head_act: Sigmoid::new(),
                classifier: Linear::new(config.embedding_dim, config.classes, config.seed + 300),
                config,
                cached_batch: None,
            })
        } else {
            // Single branch on the stacked (2-channel) gradient array.
            // With kernel fan-in doubled by the extra input channel, the
            // convolution budget roughly matches; the head keeps the same
            // width by duplicating the branch features.
            Ok(BiometricExtractor {
                branch_positive: build_branch(&config, 2, config.seed),
                branch_negative: None,
                head: Linear::new(branch_features, config.embedding_dim, config.seed + 200),
                head_act: Sigmoid::new(),
                classifier: Linear::new(config.embedding_dim, config.classes, config.seed + 300),
                config,
                cached_batch: None,
            })
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// MandiblePrint dimensionality.
    pub fn embedding_dim(&self) -> usize {
        self.config.embedding_dim
    }

    /// Batches gradient arrays into the CNN input tensor
    /// `[N, 2, axes, half_n]`.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::DimensionMismatch`] when an array's shape
    /// differs from the configuration.
    pub fn batch_input(&self, arrays: &[&GradientArray]) -> Result<Tensor, MandiPassError> {
        let per = 2 * self.config.axes * self.config.half_n;
        let mut data = Vec::with_capacity(arrays.len() * per);
        for a in arrays {
            if a.axes() != self.config.axes || a.half_n() != self.config.half_n {
                return Err(MandiPassError::DimensionMismatch {
                    expected: per,
                    got: 2 * a.axes() * a.half_n(),
                });
            }
            data.extend(a.to_f32());
        }
        Tensor::from_vec(
            vec![arrays.len(), 2, self.config.axes, self.config.half_n],
            data,
        )
        .map_err(MandiPassError::from)
    }

    /// Forward pass: returns `(embeddings [N, D], logits [N, classes])`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> (Tensor, Tensor) {
        if !train {
            return self.infer_forward(input);
        }
        let features = match &mut self.branch_negative {
            Some(branch_negative) => {
                let (pos, neg) = split_directions(&self.config, input);
                let fp = self.branch_positive.forward(&pos, train);
                let fn_ = branch_negative.forward(&neg, train);
                Tensor::concat_cols(&[&fp, &fn_])
            }
            None => self.branch_positive.forward(input, train),
        };
        let pre = self.head.forward(&features, train);
        let embedding = self.head_act.forward(&pre, train);
        let logits = self.classifier.forward(&embedding, train);
        self.cached_batch = Some(input.shape()[0]);
        (embedding, logits)
    }

    /// Evaluation-mode forward pass through shared references: returns
    /// `(embeddings [N, D], logits [N, classes])` using batch-norm running
    /// statistics, without touching any backward cache. This is the
    /// deployed path — a trained extractor can serve concurrent
    /// verifications.
    pub fn infer_forward(&self, input: &Tensor) -> (Tensor, Tensor) {
        let _span = mandipass_telemetry::span("cnn_forward");
        let features = match &self.branch_negative {
            Some(branch_negative) => {
                let (pos, neg) = split_directions(&self.config, input);
                let fp = {
                    let _span = mandipass_telemetry::span("branch_positive");
                    self.branch_positive.infer(&pos)
                };
                let fn_ = {
                    let _span = mandipass_telemetry::span("branch_negative");
                    branch_negative.infer(&neg)
                };
                Tensor::concat_cols(&[&fp, &fn_])
            }
            None => {
                let _span = mandipass_telemetry::span("branch_positive");
                self.branch_positive.infer(input)
            }
        };
        let (embedding, logits) = {
            let _span = mandipass_telemetry::span("embedding_head");
            let pre = self.head.infer(&features);
            let embedding = self.head_act.infer(&pre);
            let logits = self.classifier.infer(&embedding);
            (embedding, logits)
        };
        (embedding, logits)
    }

    /// Backward pass from the loss gradient with respect to the logits.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode forward.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        assert!(
            self.cached_batch.take().is_some(),
            "backward requires a preceding training-mode forward"
        );
        let grad_embedding = self.classifier.backward(grad_logits);
        let grad_pre = self.head_act.backward(&grad_embedding);
        let grad_features = self.head.backward(&grad_pre);
        match &mut self.branch_negative {
            Some(branch_negative) => {
                let branch_features = self.config.branch_features();
                let parts = grad_features.split_cols(&[branch_features, branch_features]);
                self.branch_positive.backward(&parts[0]);
                branch_negative.backward(&parts[1]);
            }
            None => {
                self.branch_positive.backward(&grad_features);
            }
        }
    }

    /// One optimisation step over a batch: zero grads, forward, loss,
    /// backward. Returns `(loss, accuracy)`; the caller applies the
    /// optimiser to [`BiometricExtractor::params`].
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize]) -> (f32, f64) {
        self.zero_grad();
        let (_, logits) = self.forward(input, true);
        let (loss, grad) = cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        self.backward(&grad);
        (loss, acc)
    }

    /// Fast-path embeddings: consumes a flat `[N, 2, axes, half_n]` arena
    /// buffer and returns the `[N, embedding_dim]` embedding buffer (the
    /// caller releases it). Skips the classifier head — deployment never
    /// reads the logits. Emits the same stage spans as
    /// [`BiometricExtractor::infer_forward`] plus the kernel-level
    /// `im2col`/`gemm`/`bias_act` spans from the convolution fast path.
    fn infer_embeddings_fast(&self, input: Vec<f32>, n: usize, ctx: &mut InferCtx) -> Vec<f32> {
        let _span = mandipass_telemetry::span("cnn_forward");
        let axes = self.config.axes;
        let half_n = self.config.half_n;
        let plane = axes * half_n;
        let (features, fshape) = match &self.branch_negative {
            Some(branch_negative) => {
                let mut pos = ctx.acquire(n * plane);
                let mut neg = ctx.acquire(n * plane);
                for i in 0..n {
                    let base = i * 2 * plane;
                    pos[i * plane..(i + 1) * plane].copy_from_slice(&input[base..base + plane]);
                    neg[i * plane..(i + 1) * plane]
                        .copy_from_slice(&input[base + plane..base + 2 * plane]);
                }
                ctx.release(input);
                let shape = Shape::d4(n, 1, axes, half_n);
                let (fp, fp_shape) = {
                    let _span = mandipass_telemetry::span("branch_positive");
                    self.branch_positive.infer_fast(pos, shape, ctx)
                };
                let (fneg, fneg_shape) = {
                    let _span = mandipass_telemetry::span("branch_negative");
                    branch_negative.infer_fast(neg, shape, ctx)
                };
                let pc = fp_shape.dims()[1];
                let nc = fneg_shape.dims()[1];
                let mut cat = ctx.acquire(n * (pc + nc));
                for i in 0..n {
                    let dst = i * (pc + nc);
                    cat[dst..dst + pc].copy_from_slice(&fp[i * pc..(i + 1) * pc]);
                    cat[dst + pc..dst + pc + nc].copy_from_slice(&fneg[i * nc..(i + 1) * nc]);
                }
                ctx.release(fp);
                ctx.release(fneg);
                (cat, Shape::d2(n, pc + nc))
            }
            None => {
                let _span = mandipass_telemetry::span("branch_positive");
                self.branch_positive
                    .infer_fast(input, Shape::d4(n, 2, axes, half_n), ctx)
            }
        };
        let _head_span = mandipass_telemetry::span("embedding_head");
        let (pre, pre_shape) = self.head.infer_fast(features, fshape, ctx);
        let (embedding, _) = self.head_act.infer_fast(pre, pre_shape, ctx);
        embedding
    }

    /// Extracts MandiblePrints from gradient arrays (evaluation mode —
    /// running batch-norm statistics, no caching). Delegates to
    /// [`BiometricExtractor::extract_prints_batch`]: one probe is a batch
    /// of one.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`BiometricExtractor::batch_input`].
    pub fn extract(&self, arrays: &[&GradientArray]) -> Result<Vec<MandiblePrint>, MandiPassError> {
        self.extract_prints_batch(arrays)
    }

    /// Batched probe extraction through the zero-allocation fast path:
    /// pushes all `N` probes through one `[N, 2, axes, half_n]` forward
    /// using the calling thread's scratch arena, so retried verifications
    /// amortise the per-forward fixed costs. Bit-exact with
    /// [`BiometricExtractor::extract_naive`] (the im2col+GEMM kernel
    /// accumulates in the same order as the scalar loop nest).
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::DimensionMismatch`] when an array's shape
    /// differs from the configuration.
    pub fn extract_prints_batch(
        &self,
        arrays: &[&GradientArray],
    ) -> Result<Vec<MandiblePrint>, MandiPassError> {
        if arrays.is_empty() {
            return Ok(Vec::new());
        }
        let per = 2 * self.config.axes * self.config.half_n;
        for a in arrays {
            if a.axes() != self.config.axes || a.half_n() != self.config.half_n {
                return Err(MandiPassError::DimensionMismatch {
                    expected: per,
                    got: 2 * a.axes() * a.half_n(),
                });
            }
        }
        INFER_CTX.with(|cell| {
            let ctx = &mut *cell.borrow_mut();
            let mut input = ctx.acquire(arrays.len() * per);
            for (i, a) in arrays.iter().enumerate() {
                a.write_f32_into(&mut input[i * per..(i + 1) * per]);
            }
            let embeddings = self.infer_embeddings_fast(input, arrays.len(), ctx);
            let d = self.config.embedding_dim;
            let prints = (0..arrays.len())
                .map(|i| MandiblePrint::new(embeddings[i * d..(i + 1) * d].to_vec()))
                .collect();
            ctx.release(embeddings);
            publish_arena_metrics(ctx);
            Ok(prints)
        })
    }

    /// Reference extraction through the original tensor-per-layer path —
    /// the parity oracle for the fast path (and the fallback nothing
    /// optimised touches).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`BiometricExtractor::batch_input`].
    pub fn extract_naive(
        &self,
        arrays: &[&GradientArray],
    ) -> Result<Vec<MandiblePrint>, MandiPassError> {
        if arrays.is_empty() {
            return Ok(Vec::new());
        }
        let input = self.batch_input(arrays)?;
        let (embeddings, _) = self.infer_forward(&input);
        let d = self.config.embedding_dim;
        Ok((0..arrays.len())
            .map(|i| MandiblePrint::new(embeddings.data()[i * d..(i + 1) * d].to_vec()))
            .collect())
    }

    /// Pre-packs weights for the inference fast path (transposed linear
    /// weights). Bit-exact — safe to call on every deployed extractor;
    /// invalidated automatically when an optimiser touches the params.
    pub fn prepare_inference(&mut self) {
        self.branch_positive.prepare_inference();
        if let Some(branch_negative) = &mut self.branch_negative {
            branch_negative.prepare_inference();
        }
        self.head.prepare_inference();
    }

    /// Deployment-time conv+batch-norm fusion on both branches (see
    /// [`Sequential::fuse`]): folds running statistics into the preceding
    /// convolutions' weights so the deployed network runs fewer layers.
    /// Returns the number of layers folded away. Outputs match unfused to
    /// ≈1e-6, not bit for bit — opt in only where that tolerance is
    /// acceptable.
    ///
    /// # Errors
    ///
    /// Propagates [`mandipass_nn::NnError::FusePendingBackward`] when a
    /// training-mode forward cache is pending.
    pub fn fuse(&mut self) -> Result<usize, MandiPassError> {
        let mut folded = self.branch_positive.fuse()?;
        if let Some(branch_negative) = &mut self.branch_negative {
            folded += branch_negative.fuse()?;
        }
        self.prepare_inference();
        Ok(folded)
    }

    /// Classification accuracy of the training head on a labelled batch
    /// (evaluation mode).
    pub fn evaluate_accuracy(&self, input: &Tensor, labels: &[usize]) -> f64 {
        let (_, logits) = self.infer_forward(input);
        accuracy(&logits, labels)
    }
}

impl Layer for BiometricExtractor {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (_, logits) = BiometricExtractor::forward(self, input, train);
        logits
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let (_, logits) = self.infer_forward(input);
        logits
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        BiometricExtractor::backward(self, grad_output);
        // The input gradient is not needed by any caller (this is the
        // first layer of the model); return a zero placeholder of the
        // right logical meaning.
        Tensor::zeros(vec![1, 1])
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        let mut layers: Vec<(&str, &mut dyn Layer)> =
            vec![("branch_pos", &mut self.branch_positive as &mut dyn Layer)];
        if let Some(branch_negative) = &mut self.branch_negative {
            layers.push(("branch_neg", branch_negative as &mut dyn Layer));
        }
        layers.push(("head", &mut self.head as &mut dyn Layer));
        layers.push(("classifier", &mut self.classifier as &mut dyn Layer));
        for (prefix, layer) in layers {
            for mut p in layer.params() {
                p.name = format!("{prefix}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    fn state_params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        let mut layers: Vec<(&str, &mut dyn Layer)> =
            vec![("branch_pos", &mut self.branch_positive as &mut dyn Layer)];
        if let Some(branch_negative) = &mut self.branch_negative {
            layers.push(("branch_neg", branch_negative as &mut dyn Layer));
        }
        layers.push(("head", &mut self.head as &mut dyn Layer));
        layers.push(("classifier", &mut self.classifier as &mut dyn Layer));
        for (prefix, layer) in layers {
            for mut p in layer.state_params() {
                p.name = format!("{prefix}.{}", p.name);
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_dsp::SignalArray;
    use mandipass_nn::optim::{Adam, Optimizer};

    fn toy_gradient_array(shift: f64) -> GradientArray {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|j| {
                (0..61)
                    .map(|i| ((i as f64 * (0.5 + 0.1 * j as f64) + shift).sin() + 1.0) / 2.0)
                    .collect()
            })
            .collect();
        let arr = SignalArray::new(rows).unwrap();
        GradientArray::from_signal_array(&arr, 30).unwrap()
    }

    #[test]
    fn paper_config_param_count_is_plausible() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::paper(33)).unwrap();
        let count = ex.param_count();
        // FC dominates: 2·32·6·4 = 1536 inputs × 512 ≈ 786k parameters.
        assert!(count > 700_000 && count < 1_100_000, "params {count}");
    }

    #[test]
    fn forward_shapes_are_correct() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(4)).unwrap();
        let a = toy_gradient_array(0.0);
        let b = toy_gradient_array(1.0);
        let input = ex.batch_input(&[&a, &b]).unwrap();
        assert_eq!(input.shape(), &[2, 2, 6, 30]);
        let (embed, logits) = ex.forward(&input, false);
        assert_eq!(embed.shape(), &[2, 32]);
        assert_eq!(logits.shape(), &[2, 4]);
    }

    #[test]
    fn embeddings_are_in_unit_interval() {
        let ex = BiometricExtractor::new(ExtractorConfig::tiny(4)).unwrap();
        let a = toy_gradient_array(0.3);
        let prints = ex.extract(&[&a]).unwrap();
        assert_eq!(prints.len(), 1);
        assert!(prints[0]
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_loss_on_separable_toy_data() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        let a = toy_gradient_array(0.0);
        let b = toy_gradient_array(2.0);
        let input = ex.batch_input(&[&a, &b]).unwrap();
        let labels = [0usize, 1usize];
        let mut adam = Adam::new(0.01);
        let (first_loss, _) = ex.train_batch(&input, &labels);
        adam.step(&mut ex.params());
        let mut last_loss = first_loss;
        for _ in 0..30 {
            let (loss, _) = ex.train_batch(&input, &labels);
            adam.step(&mut ex.params());
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn extract_empty_is_empty() {
        let ex = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        assert!(ex.extract(&[]).unwrap().is_empty());
    }

    #[test]
    fn mismatched_array_shape_is_rejected() {
        let ex = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        let arr = SignalArray::new(vec![vec![0.1, 0.9, 0.2, 0.8]; 6]).unwrap();
        let small = GradientArray::from_signal_array(&arr, 10).unwrap(); // half_n 10 ≠ 30
        assert!(matches!(
            ex.extract(&[&small]),
            Err(MandiPassError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = ExtractorConfig::tiny(2);
        c.embedding_dim = 0;
        assert!(BiometricExtractor::new(c).is_err());
        let mut c = ExtractorConfig::tiny(2);
        c.classes = 1;
        assert!(BiometricExtractor::new(c).is_err());
    }

    #[test]
    fn serialization_round_trip_preserves_behaviour() {
        use mandipass_nn::serialize::{load_params, save_params};
        let mut a = BiometricExtractor::new(ExtractorConfig::tiny(3)).unwrap();
        let mut b = BiometricExtractor::new(ExtractorConfig {
            seed: 999,
            ..ExtractorConfig::tiny(3)
        })
        .unwrap();
        let arr = toy_gradient_array(0.5);
        let blob = save_params(&mut a);
        load_params(&mut b, &blob).unwrap();
        let pa = a.extract(&[&arr]).unwrap();
        let pb = b.extract(&[&arr]).unwrap();
        assert_eq!(pa[0].as_slice(), pb[0].as_slice());
    }

    #[test]
    fn fast_batch_extraction_matches_naive_oracle_bitwise() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(3)).unwrap();
        ex.prepare_inference();
        let arrays = [
            toy_gradient_array(0.0),
            toy_gradient_array(0.9),
            toy_gradient_array(2.1),
        ];
        let refs: Vec<&GradientArray> = arrays.iter().collect();
        let naive = ex.extract_naive(&refs).unwrap();
        let fast = ex.extract_prints_batch(&refs).unwrap();
        assert_eq!(naive.len(), fast.len());
        for (a, b) in naive.iter().zip(&fast) {
            assert_eq!(a.as_slice(), b.as_slice(), "fast path diverged");
        }
    }

    #[test]
    fn single_branch_fast_path_matches_naive() {
        let mut config = ExtractorConfig::tiny(3);
        config.two_branch = false;
        let mut ex = BiometricExtractor::new(config).unwrap();
        ex.prepare_inference();
        let a = toy_gradient_array(0.4);
        let naive = ex.extract_naive(&[&a]).unwrap();
        let fast = ex.extract_prints_batch(&[&a]).unwrap();
        assert_eq!(naive[0].as_slice(), fast[0].as_slice());
    }

    #[test]
    fn batched_extraction_is_batch_invariant() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(3)).unwrap();
        ex.prepare_inference();
        let arrays = [toy_gradient_array(0.2), toy_gradient_array(1.4)];
        let refs: Vec<&GradientArray> = arrays.iter().collect();
        let batched = ex.extract_prints_batch(&refs).unwrap();
        for (i, a) in arrays.iter().enumerate() {
            let single = ex.extract_prints_batch(&[a]).unwrap();
            assert_eq!(single[0].as_slice(), batched[i].as_slice());
        }
    }

    #[test]
    fn fused_extractor_matches_within_tolerance() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        // Move the running statistics off init so fusion has work to do.
        let a = toy_gradient_array(0.0);
        let b = toy_gradient_array(2.0);
        let input = ex.batch_input(&[&a, &b]).unwrap();
        let mut adam = Adam::new(0.01);
        for _ in 0..3 {
            let _ = ex.train_batch(&input, &[0, 1]);
            adam.step(&mut ex.params());
        }
        let reference = ex.extract_naive(&[&a]).unwrap();
        let folded = ex.fuse().unwrap();
        assert_eq!(folded, 6, "three batch norms per branch fold away");
        let fused = ex.extract_prints_batch(&[&a]).unwrap();
        for (x, y) in fused[0].as_slice().iter().zip(reference[0].as_slice()) {
            assert!((x - y).abs() < 1e-6, "fused {x} vs unfused {y}");
        }
    }

    #[test]
    fn arena_reaches_steady_state_across_extractions() {
        let mut ex = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        ex.prepare_inference();
        let a = toy_gradient_array(0.5);
        // Warm up, then demand zero growth over a steady-state window.
        for _ in 0..2 {
            ex.extract_prints_batch(&[&a]).unwrap();
        }
        reset_arena_growth();
        for _ in 0..5 {
            ex.extract_prints_batch(&[&a]).unwrap();
        }
        let stats = arena_stats();
        assert_eq!(stats.growth_events, 0, "steady-state extraction grew");
        assert!(stats.high_water_bytes > 0);
    }

    #[test]
    fn deterministic_construction() {
        let a = BiometricExtractor::new(ExtractorConfig::tiny(3)).unwrap();
        let b = BiometricExtractor::new(ExtractorConfig::tiny(3)).unwrap();
        let arr = toy_gradient_array(0.7);
        assert_eq!(
            a.extract(&[&arr]).unwrap()[0].as_slice(),
            b.extract(&[&arr]).unwrap()[0].as_slice()
        );
    }
}
