//! The §V.B gradient array: direction-separated CNN input.
//!
//! Equation 6 predicts different biometric content in the positive- and
//! negative-direction vibration phases, so the paper computes per-axis
//! gradients (Eq. 8), splits them by sign, interpolates both streams to
//! `n/2` values, and stacks everything into a `(2, 6, n/2)` array — one
//! channelled plane per direction, fed to its own CNN branch.

use mandipass_dsp::gradient::directional_gradients;
use mandipass_dsp::{DspError, SignalArray};

use crate::error::MandiPassError;

/// A `(2, axes, half_n)` direction-separated gradient array.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientArray {
    axes: usize,
    half_n: usize,
    /// Flat data in `[direction][axis][time]` order; direction 0 is
    /// positive, direction 1 negative.
    data: Vec<f64>,
}

impl GradientArray {
    /// Builds the gradient array from a preprocessed signal array,
    /// interpolating each direction stream to `half_n` values.
    ///
    /// # Errors
    ///
    /// * [`MandiPassError::InvalidConfig`] when `half_n` is zero.
    /// * [`MandiPassError::Dsp`] ([`DspError::TooShort`]) when the
    ///   array has fewer than two samples per axis, so no gradient
    ///   exists to split.
    pub fn from_signal_array(array: &SignalArray, half_n: usize) -> Result<Self, MandiPassError> {
        let _span = mandipass_telemetry::span("gradient_array");
        if half_n == 0 {
            return Err(MandiPassError::InvalidConfig {
                reason: "half_n must be at least 1".to_string(),
            });
        }
        if array.samples_per_axis() < 2 {
            return Err(MandiPassError::Dsp(DspError::TooShort {
                needed: 2,
                got: array.samples_per_axis(),
            }));
        }
        let axes = array.axis_count();
        let mut data = vec![0.0; 2 * axes * half_n];
        for (j, axis) in array.iter().enumerate() {
            let (pos, neg) = directional_gradients(axis, half_n);
            data[j * half_n..(j + 1) * half_n].copy_from_slice(&pos);
            let neg_base = axes * half_n + j * half_n;
            data[neg_base..neg_base + half_n].copy_from_slice(&neg);
        }
        Ok(GradientArray { axes, half_n, data })
    }

    /// Rebuilds a gradient array from the flat `[direction][axis][time]`
    /// layout produced by [`GradientArray::to_f32`].
    ///
    /// # Errors
    ///
    /// [`MandiPassError::DimensionMismatch`] when
    /// `flat.len() != 2 * axes * half_n`.
    pub fn from_flat(flat: &[f32], axes: usize, half_n: usize) -> Result<Self, MandiPassError> {
        if flat.len() != 2 * axes * half_n {
            return Err(MandiPassError::DimensionMismatch {
                expected: 2 * axes * half_n,
                got: flat.len(),
            });
        }
        Ok(GradientArray {
            axes,
            half_n,
            data: flat.iter().map(|&v| f64::from(v)).collect(),
        })
    }

    /// Number of axis rows per direction plane.
    pub fn axes(&self) -> usize {
        self.axes
    }

    /// Gradient samples per direction stream (`n/2`).
    pub fn half_n(&self) -> usize {
        self.half_n
    }

    /// The positive-direction plane of axis `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn positive(&self, j: usize) -> &[f64] {
        assert!(j < self.axes, "axis {j} out of range");
        &self.data[j * self.half_n..(j + 1) * self.half_n]
    }

    /// The negative-direction plane of axis `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn negative(&self, j: usize) -> &[f64] {
        assert!(j < self.axes, "axis {j} out of range");
        let base = self.axes * self.half_n + j * self.half_n;
        &self.data[base..base + self.half_n]
    }

    /// Flattens to `f32` in `[direction][axis][time]` order — the CNN
    /// input layout (`2 × axes × half_n` values).
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v as f32).collect()
    }

    /// Writes the `[direction][axis][time]` `f32` flattening into `out`
    /// without allocating — the inference fast path fills arena buffers
    /// in place instead of going through [`GradientArray::to_f32`].
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from [`GradientArray::len`].
    pub fn write_f32_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.data.len(), "destination length mismatch");
        for (o, &v) in out.iter_mut().zip(&self.data) {
            *o = v as f32;
        }
    }

    /// Total number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty (only for zero `half_n`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_array() -> SignalArray {
        // Two axes, alternating up/down so both directions are populated.
        SignalArray::new(vec![
            vec![0.0, 1.0, 0.2, 0.9, 0.1, 0.8],
            vec![0.5, 0.4, 0.6, 0.3, 0.7, 0.2],
        ])
        .unwrap()
    }

    #[test]
    fn shape_is_two_by_axes_by_half() {
        let g = GradientArray::from_signal_array(&toy_array(), 3).unwrap();
        assert_eq!(g.axes(), 2);
        assert_eq!(g.half_n(), 3);
        assert_eq!(g.len(), 2 * 2 * 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn directions_have_correct_signs() {
        let g = GradientArray::from_signal_array(&toy_array(), 3).unwrap();
        for j in 0..2 {
            assert!(g.positive(j).iter().all(|&v| v >= 0.0));
            assert!(g.negative(j).iter().all(|&v| v <= 0.0));
        }
    }

    #[test]
    fn monotone_axis_yields_zero_negative_plane() {
        let arr = SignalArray::new(vec![vec![0.0, 0.25, 0.5, 0.75, 1.0]]).unwrap();
        let g = GradientArray::from_signal_array(&arr, 2).unwrap();
        assert!(g.positive(0).iter().all(|&v| (v - 0.25).abs() < 1e-12));
        assert_eq!(g.negative(0), &[0.0, 0.0]);
    }

    #[test]
    fn f32_layout_is_direction_major() {
        let g = GradientArray::from_signal_array(&toy_array(), 3).unwrap();
        let flat = g.to_f32();
        assert_eq!(flat.len(), 12);
        // First half must equal the two positive planes concatenated.
        for (i, &v) in g.positive(0).iter().enumerate() {
            assert_eq!(flat[i], v as f32);
        }
        for (i, &v) in g.negative(0).iter().enumerate() {
            assert_eq!(flat[6 + i], v as f32);
        }
    }

    #[test]
    fn zero_half_n_is_invalid_config() {
        assert!(matches!(
            GradientArray::from_signal_array(&toy_array(), 0),
            Err(MandiPassError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_sample_axis_is_too_short() {
        let arr = SignalArray::new(vec![vec![0.5]]).unwrap();
        assert!(matches!(
            GradientArray::from_signal_array(&arr, 2),
            Err(MandiPassError::Dsp(DspError::TooShort { .. }))
        ));
    }

    #[test]
    fn from_flat_round_trips_and_checks_length() {
        let g = GradientArray::from_signal_array(&toy_array(), 3).unwrap();
        let flat = g.to_f32();
        let back = GradientArray::from_flat(&flat, 2, 3).unwrap();
        assert_eq!(back.axes(), 2);
        assert!(matches!(
            GradientArray::from_flat(&flat, 2, 4),
            Err(MandiPassError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_axis_panics() {
        let g = GradientArray::from_signal_array(&toy_array(), 3).unwrap();
        let _ = g.positive(5);
    }
}
