//! A simulated secure enclave: the template store at rest.
//!
//! The real system keeps the cancelable MandiblePrint template in the
//! earphone's secure enclave. We reproduce the enclave's *protocol role*:
//! templates at rest, keyed by user, revocable, with access accounting —
//! the hardware isolation itself is out of scope (documented in
//! DESIGN.md).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::MandiPassError;
use crate::template::CancelableTemplate;

/// A thread-safe sealed template store.
#[derive(Debug, Default)]
pub struct SecureEnclave {
    inner: Mutex<EnclaveInner>,
}

#[derive(Debug, Default)]
struct EnclaveInner {
    templates: HashMap<u32, CancelableTemplate>,
    reads: u64,
    writes: u64,
}

impl SecureEnclave {
    /// Creates an empty enclave.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) the template of `user_id`.
    pub fn store(&self, user_id: u32, template: CancelableTemplate) {
        let mut inner = self.inner.lock().expect("enclave lock poisoned");
        inner.writes += 1;
        inner.templates.insert(user_id, template);
    }

    /// Loads the template of `user_id`.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NotEnrolled`] when no template exists.
    pub fn load(&self, user_id: u32) -> Result<CancelableTemplate, MandiPassError> {
        let mut inner = self.inner.lock().expect("enclave lock poisoned");
        inner.reads += 1;
        inner
            .templates
            .get(&user_id)
            .cloned()
            .ok_or(MandiPassError::NotEnrolled { user_id })
    }

    /// Deletes the template of `user_id` (revocation step 1; step 2 is
    /// enrolling again under a fresh Gaussian matrix). Returns the old
    /// template if one existed — e.g. for the replay-attack experiments,
    /// which *steal* the template at this point.
    pub fn revoke(&self, user_id: u32) -> Option<CancelableTemplate> {
        let mut inner = self.inner.lock().expect("enclave lock poisoned");
        inner.writes += 1;
        inner.templates.remove(&user_id)
    }

    /// Whether `user_id` has a template enrolled.
    pub fn contains(&self, user_id: u32) -> bool {
        self.inner
            .lock()
            .expect("enclave lock poisoned")
            .templates
            .contains_key(&user_id)
    }

    /// Number of enrolled templates.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("enclave lock poisoned")
            .templates
            .len()
    }

    /// Whether the enclave holds no templates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(reads, writes)` access counters — observable side channel used
    /// by tests and the overhead experiment.
    pub fn access_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("enclave lock poisoned");
        (inner.reads, inner.writes)
    }

    /// Total bytes of template storage currently held.
    pub fn storage_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("enclave lock poisoned")
            .templates
            .values()
            .map(|t| t.storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{GaussianMatrix, MandiblePrint};

    fn template(seed: u64) -> CancelableTemplate {
        let g = GaussianMatrix::generate(seed, 16);
        g.transform(&MandiblePrint::new(vec![0.5; 16])).unwrap()
    }

    #[test]
    fn store_then_load_round_trips() {
        let enclave = SecureEnclave::new();
        let t = template(1);
        enclave.store(7, t.clone());
        assert_eq!(enclave.load(7).unwrap(), t);
        assert!(enclave.contains(7));
        assert_eq!(enclave.len(), 1);
    }

    #[test]
    fn missing_user_yields_not_enrolled() {
        let enclave = SecureEnclave::new();
        assert!(matches!(
            enclave.load(3),
            Err(MandiPassError::NotEnrolled { user_id: 3 })
        ));
    }

    #[test]
    fn revoke_removes_and_returns_template() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(2));
        let stolen = enclave.revoke(1);
        assert!(stolen.is_some());
        assert!(!enclave.contains(1));
        assert!(enclave.revoke(1).is_none());
        assert!(enclave.is_empty());
    }

    #[test]
    fn replacement_overwrites() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(3));
        let newer = template(4);
        enclave.store(1, newer.clone());
        assert_eq!(enclave.load(1).unwrap(), newer);
        assert_eq!(enclave.len(), 1);
    }

    #[test]
    fn access_counters_track_operations() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(5));
        let _ = enclave.load(1);
        let _ = enclave.load(2);
        let (reads, writes) = enclave.access_counts();
        assert_eq!((reads, writes), (2, 1));
    }

    #[test]
    fn storage_accounts_all_templates() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(6));
        enclave.store(2, template(7));
        assert_eq!(enclave.storage_bytes(), 2 * (16 * 4 + 8));
    }

    #[test]
    fn enclave_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SecureEnclave>();
    }
}
