//! A simulated secure enclave: the template store at rest.
//!
//! The real system keeps the cancelable MandiblePrint template in the
//! earphone's secure enclave. We reproduce the enclave's *protocol role*:
//! templates at rest, keyed by user, revocable, with access accounting —
//! the hardware isolation itself is out of scope (documented in
//! DESIGN.md).
//!
//! Every operation is additionally recorded in a bounded ring-buffer
//! **audit trail** of typed [`AuditEvent`]s, sequenced by a per-enclave
//! logical timestamp, so the access history is observable (and, with a
//! fixed seed upstream, bit-identical across runs) without any wall-clock
//! dependence.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, PoisonError};

use mandipass_telemetry::monitor::Monitor;

use crate::error::MandiPassError;
use crate::template::CancelableTemplate;

/// Default number of audit events retained before the oldest are evicted.
pub const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// The operation class of one audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// A template was stored (or replaced).
    Store,
    /// A template load was attempted (`outcome` says whether it existed).
    Load,
    /// A template was revoked (`outcome` says whether one existed).
    Revoke,
    /// A verification against the stored template was accepted.
    VerifyHit,
    /// A verification against the stored template was rejected.
    VerifyMiss,
    /// A probe was rejected by the signal-quality gate before any
    /// template comparison (`reason` carries the gate's label).
    QualityReject,
    /// A verification ran in degraded accelerometer-only mode
    /// (`outcome`/`distance` as for the verify events).
    DegradedVerify,
}

impl AuditKind {
    /// Stable lower-case label, used by reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::Store => "store",
            AuditKind::Load => "load",
            AuditKind::Revoke => "revoke",
            AuditKind::VerifyHit => "verify_hit",
            AuditKind::VerifyMiss => "verify_miss",
            AuditKind::QualityReject => "quality_reject",
            AuditKind::DegradedVerify => "degraded_verify",
        }
    }
}

/// One entry in the enclave audit trail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditEvent {
    /// Monotonic per-enclave logical timestamp (never reused, even after
    /// the ring evicts older events).
    pub seq: u64,
    /// What happened.
    pub kind: AuditKind,
    /// The user the operation targeted.
    pub user_id: u32,
    /// Operation success: template present for load/revoke, probe
    /// accepted for verify events, always `true` for store.
    pub outcome: bool,
    /// Cosine distance of the decision, for verify events only.
    pub distance: Option<f64>,
    /// Machine-readable reject reason, for quality-reject events only.
    pub reason: Option<&'static str>,
}

/// Named monotonic access counters, derived from the full operation
/// history (not the bounded ring, so eviction never loses counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// Number of [`SecureEnclave::store`] calls.
    pub stores: u64,
    /// Number of [`SecureEnclave::load`] calls (hits and misses).
    pub loads: u64,
}

/// A thread-safe sealed template store with a bounded audit trail.
#[derive(Debug)]
pub struct SecureEnclave {
    inner: Mutex<EnclaveInner>,
    /// Live-monitoring sink: every audit event also feeds the monitor's
    /// sliding windows (the global monitor unless rebound via
    /// [`SecureEnclave::set_monitor`]).
    monitor: &'static Monitor,
}

#[derive(Debug)]
struct EnclaveInner {
    templates: HashMap<u32, CancelableTemplate>,
    /// Secondary accelerometer-only templates backing degraded-mode
    /// verification (sealed at enrolment when available).
    degraded: HashMap<u32, CancelableTemplate>,
    counts: AccessCounts,
    trail: VecDeque<AuditEvent>,
    capacity: usize,
    next_seq: u64,
}

impl EnclaveInner {
    fn record(&mut self, kind: AuditKind, user_id: u32, outcome: bool, distance: Option<f64>) {
        self.record_with_reason(kind, user_id, outcome, distance, None);
    }

    fn record_with_reason(
        &mut self,
        kind: AuditKind,
        user_id: u32,
        outcome: bool,
        distance: Option<f64>,
        reason: Option<&'static str>,
    ) {
        if self.trail.len() == self.capacity {
            self.trail.pop_front();
        }
        self.trail.push_back(AuditEvent {
            seq: self.next_seq,
            kind,
            user_id,
            outcome,
            distance,
            reason,
        });
        self.next_seq += 1;
    }
}

impl Default for SecureEnclave {
    fn default() -> Self {
        Self::with_audit_capacity(DEFAULT_AUDIT_CAPACITY)
    }
}

impl SecureEnclave {
    /// Creates an empty enclave with the default audit capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poison-tolerant lock: a panic in another thread mid-operation
    /// must not take the whole template store down with it — the
    /// enclave's invariants hold after every individual mutation.
    fn lock(&self) -> MutexGuard<'_, EnclaveInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates an empty enclave retaining at most `capacity` audit
    /// events (minimum 1).
    pub fn with_audit_capacity(capacity: usize) -> Self {
        SecureEnclave {
            inner: Mutex::new(EnclaveInner {
                templates: HashMap::new(),
                degraded: HashMap::new(),
                counts: AccessCounts::default(),
                trail: VecDeque::new(),
                capacity: capacity.max(1),
                next_seq: 0,
            }),
            monitor: mandipass_telemetry::monitor::global(),
        }
    }

    /// Redirects the enclave's windowed audit feed to `monitor` (tests
    /// and multi-tenant deployments; the default is the global monitor).
    pub fn set_monitor(&mut self, monitor: &'static Monitor) {
        self.monitor = monitor;
    }

    /// Stores (or replaces) the template of `user_id`.
    pub fn store(&self, user_id: u32, template: CancelableTemplate) {
        let mut inner = self.lock();
        inner.counts.stores += 1;
        inner.record(AuditKind::Store, user_id, true, None);
        inner.templates.insert(user_id, template);
        self.monitor.observe_audit(AuditKind::Store.label());
    }

    /// Loads the template of `user_id`.
    ///
    /// # Errors
    ///
    /// Returns [`MandiPassError::NotEnrolled`] when no template exists.
    pub fn load(&self, user_id: u32) -> Result<CancelableTemplate, MandiPassError> {
        let mut inner = self.lock();
        inner.counts.loads += 1;
        let found = inner.templates.get(&user_id).cloned();
        inner.record(AuditKind::Load, user_id, found.is_some(), None);
        self.monitor.observe_audit(AuditKind::Load.label());
        found.ok_or(MandiPassError::NotEnrolled { user_id })
    }

    /// Stores (or replaces) the accelerometer-only fallback template of
    /// `user_id`, used by degraded-mode verification when the gyro has
    /// failed.
    pub fn store_degraded(&self, user_id: u32, template: CancelableTemplate) {
        let mut inner = self.lock();
        inner.counts.stores += 1;
        inner.record_with_reason(AuditKind::Store, user_id, true, None, Some("degraded"));
        inner.degraded.insert(user_id, template);
        self.monitor.observe_audit(AuditKind::Store.label());
    }

    /// Loads the accelerometer-only fallback template of `user_id`, if
    /// one was sealed at enrolment.
    pub fn load_degraded(&self, user_id: u32) -> Option<CancelableTemplate> {
        let mut inner = self.lock();
        inner.counts.loads += 1;
        let found = inner.degraded.get(&user_id).cloned();
        inner.record_with_reason(
            AuditKind::Load,
            user_id,
            found.is_some(),
            None,
            Some("degraded"),
        );
        self.monitor.observe_audit(AuditKind::Load.label());
        found
    }

    /// Deletes the template of `user_id` (revocation step 1; step 2 is
    /// enrolling again under a fresh Gaussian matrix). The degraded
    /// fallback template is removed with it. Returns the old primary
    /// template if one existed — e.g. for the replay-attack experiments,
    /// which *steal* the template at this point.
    pub fn revoke(&self, user_id: u32) -> Option<CancelableTemplate> {
        let mut inner = self.lock();
        let removed = inner.templates.remove(&user_id);
        inner.degraded.remove(&user_id);
        inner.record(AuditKind::Revoke, user_id, removed.is_some(), None);
        self.monitor.observe_audit(AuditKind::Revoke.label());
        removed
    }

    /// Appends a verification decision to the audit trail. Called by the
    /// authenticator after the accept/reject decision is made.
    pub fn record_verify(&self, user_id: u32, accepted: bool, distance: f64) {
        let mut inner = self.lock();
        let kind = if accepted {
            AuditKind::VerifyHit
        } else {
            AuditKind::VerifyMiss
        };
        inner.record(kind, user_id, accepted, Some(distance));
        self.monitor.observe_audit(kind.label());
    }

    /// Appends a quality-gate rejection to the audit trail, carrying
    /// the machine-readable reason label.
    pub fn record_quality_reject(&self, user_id: u32, reason: &'static str) {
        let mut inner = self.lock();
        inner.record_with_reason(AuditKind::QualityReject, user_id, false, None, Some(reason));
        self.monitor.observe_audit(AuditKind::QualityReject.label());
    }

    /// Appends a degraded (accelerometer-only) verification decision to
    /// the audit trail.
    pub fn record_degraded_verify(&self, user_id: u32, accepted: bool, distance: f64) {
        let mut inner = self.lock();
        inner.record_with_reason(
            AuditKind::DegradedVerify,
            user_id,
            accepted,
            Some(distance),
            Some("gyro_fault"),
        );
        self.monitor
            .observe_audit(AuditKind::DegradedVerify.label());
    }

    /// Whether `user_id` has a template enrolled.
    pub fn contains(&self, user_id: u32) -> bool {
        self.lock().templates.contains_key(&user_id)
    }

    /// Number of enrolled templates.
    pub fn len(&self) -> usize {
        self.lock().templates.len()
    }

    /// Whether the enclave holds no templates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic access counters — observable side channel used by tests
    /// and the overhead experiment. Unlike the bounded [`audit_trail`],
    /// these never lose history to ring eviction.
    ///
    /// [`audit_trail`]: SecureEnclave::audit_trail
    pub fn access_counts(&self) -> AccessCounts {
        self.lock().counts
    }

    /// A snapshot of the retained audit events, oldest first.
    pub fn audit_trail(&self) -> Vec<AuditEvent> {
        let inner = self.lock();
        inner.trail.iter().copied().collect()
    }

    /// The retained audit events that target `user_id`, oldest first.
    pub fn audit_events_for(&self, user_id: u32) -> Vec<AuditEvent> {
        let inner = self.lock();
        inner
            .trail
            .iter()
            .filter(|e| e.user_id == user_id)
            .copied()
            .collect()
    }

    /// Number of retained audit events (capped at the ring capacity).
    pub fn audit_len(&self) -> usize {
        self.lock().trail.len()
    }

    /// Maximum number of audit events retained.
    pub fn audit_capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Total number of audited operations ever performed, including those
    /// already evicted from the ring.
    pub fn audit_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Total bytes of template storage currently held (primary plus
    /// degraded fallback templates).
    pub fn storage_bytes(&self) -> usize {
        let inner = self.lock();
        inner
            .templates
            .values()
            .chain(inner.degraded.values())
            .map(|t| t.storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{GaussianMatrix, MandiblePrint};

    fn template(seed: u64) -> CancelableTemplate {
        let g = GaussianMatrix::generate(seed, 16);
        g.transform(&MandiblePrint::new(vec![0.5; 16])).unwrap()
    }

    #[test]
    fn store_then_load_round_trips() {
        let enclave = SecureEnclave::new();
        let t = template(1);
        enclave.store(7, t.clone());
        assert_eq!(enclave.load(7).unwrap(), t);
        assert!(enclave.contains(7));
        assert_eq!(enclave.len(), 1);
    }

    #[test]
    fn missing_user_yields_not_enrolled() {
        let enclave = SecureEnclave::new();
        assert!(matches!(
            enclave.load(3),
            Err(MandiPassError::NotEnrolled { user_id: 3 })
        ));
    }

    #[test]
    fn revoke_removes_and_returns_template() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(2));
        let stolen = enclave.revoke(1);
        assert!(stolen.is_some());
        assert!(!enclave.contains(1));
        assert!(enclave.revoke(1).is_none());
        assert!(enclave.is_empty());
    }

    #[test]
    fn replacement_overwrites() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(3));
        let newer = template(4);
        enclave.store(1, newer.clone());
        assert_eq!(enclave.load(1).unwrap(), newer);
        assert_eq!(enclave.len(), 1);
    }

    #[test]
    fn access_counters_track_operations() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(5));
        let _ = enclave.load(1);
        let _ = enclave.load(2);
        assert_eq!(
            enclave.access_counts(),
            AccessCounts {
                stores: 1,
                loads: 2
            }
        );
    }

    #[test]
    fn audit_trail_records_typed_events_in_order() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(8));
        let _ = enclave.load(1);
        let _ = enclave.load(9); // miss
        enclave.record_verify(1, true, 0.12);
        enclave.record_verify(1, false, 0.81);
        let _ = enclave.revoke(1);

        let trail = enclave.audit_trail();
        let kinds: Vec<_> = trail.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AuditKind::Store,
                AuditKind::Load,
                AuditKind::Load,
                AuditKind::VerifyHit,
                AuditKind::VerifyMiss,
                AuditKind::Revoke,
            ]
        );
        // Sequence numbers are dense and monotonic.
        assert_eq!(
            trail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        // Miss-load outcome is false; verify events carry distances.
        assert!(!trail[2].outcome);
        assert_eq!(trail[2].user_id, 9);
        assert_eq!(trail[3].distance, Some(0.12));
        assert!(trail[3].outcome);
        assert_eq!(trail[4].distance, Some(0.81));
        assert!(!trail[4].outcome);
        assert!(trail[5].outcome);
    }

    #[test]
    fn audit_ring_is_bounded_but_seq_and_counts_survive_eviction() {
        let enclave = SecureEnclave::with_audit_capacity(4);
        for i in 0..10 {
            enclave.store(i, template(u64::from(i)));
        }
        assert_eq!(enclave.audit_len(), 4);
        assert_eq!(enclave.audit_capacity(), 4);
        assert_eq!(enclave.audit_seq(), 10);
        // The ring holds the newest four events, seqs 6..10.
        let seqs: Vec<_> = enclave.audit_trail().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Totals saw all ten stores despite eviction.
        assert_eq!(enclave.access_counts().stores, 10);
    }

    #[test]
    fn audit_ring_capacity_one_keeps_only_newest_event() {
        let enclave = SecureEnclave::with_audit_capacity(1);
        assert_eq!(enclave.audit_capacity(), 1);
        enclave.store(1, template(1));
        let _ = enclave.load(1);
        let _ = enclave.load(2);
        // Only the newest event survives, every seq was still assigned.
        assert_eq!(enclave.audit_len(), 1);
        let trail = enclave.audit_trail();
        assert_eq!(trail[0].kind, AuditKind::Load);
        assert_eq!(trail[0].user_id, 2);
        assert_eq!(trail[0].seq, 2);
        assert_eq!(enclave.audit_seq(), 3);
        // AccessCounts never lose history to eviction.
        assert_eq!(
            enclave.access_counts(),
            AccessCounts {
                stores: 1,
                loads: 2
            }
        );
    }

    #[test]
    fn audit_ring_default_capacity_boundary_evicts_exactly_one() {
        let enclave = SecureEnclave::new();
        assert_eq!(enclave.audit_capacity(), DEFAULT_AUDIT_CAPACITY);
        // Fill to exactly capacity: nothing evicted yet.
        enclave.store(0, template(0));
        for _ in 1..DEFAULT_AUDIT_CAPACITY {
            let _ = enclave.load(0);
        }
        assert_eq!(enclave.audit_len(), DEFAULT_AUDIT_CAPACITY);
        assert_eq!(enclave.audit_trail()[0].seq, 0);
        // One past capacity: exactly the oldest event is gone.
        let _ = enclave.load(0);
        assert_eq!(enclave.audit_len(), DEFAULT_AUDIT_CAPACITY);
        let trail = enclave.audit_trail();
        assert_eq!(trail[0].seq, 1);
        assert_eq!(trail[trail.len() - 1].seq, DEFAULT_AUDIT_CAPACITY as u64);
        assert_eq!(enclave.audit_seq(), DEFAULT_AUDIT_CAPACITY as u64 + 1);
        // Totals still count the evicted store and every load.
        assert_eq!(
            enclave.access_counts(),
            AccessCounts {
                stores: 1,
                loads: DEFAULT_AUDIT_CAPACITY as u64
            }
        );
    }

    #[test]
    fn audit_query_filters_by_user() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(1));
        enclave.store(2, template(2));
        enclave.record_verify(2, true, 0.2);
        let for_two = enclave.audit_events_for(2);
        assert_eq!(for_two.len(), 2);
        assert!(for_two.iter().all(|e| e.user_id == 2));
        assert!(enclave.audit_events_for(3).is_empty());
    }

    #[test]
    fn audit_kind_labels_are_stable() {
        assert_eq!(AuditKind::Store.label(), "store");
        assert_eq!(AuditKind::Load.label(), "load");
        assert_eq!(AuditKind::Revoke.label(), "revoke");
        assert_eq!(AuditKind::VerifyHit.label(), "verify_hit");
        assert_eq!(AuditKind::VerifyMiss.label(), "verify_miss");
        assert_eq!(AuditKind::QualityReject.label(), "quality_reject");
        assert_eq!(AuditKind::DegradedVerify.label(), "degraded_verify");
    }

    #[test]
    fn quality_reject_and_degraded_events_carry_reasons() {
        let enclave = SecureEnclave::new();
        enclave.record_quality_reject(4, "dead_axis");
        enclave.record_degraded_verify(4, true, 0.31);
        let trail = enclave.audit_events_for(4);
        assert_eq!(trail.len(), 2);
        assert_eq!(trail[0].kind, AuditKind::QualityReject);
        assert_eq!(trail[0].reason, Some("dead_axis"));
        assert!(!trail[0].outcome);
        assert_eq!(trail[1].kind, AuditKind::DegradedVerify);
        assert_eq!(trail[1].distance, Some(0.31));
        assert!(trail[1].outcome);
    }

    #[test]
    fn degraded_slot_stores_loads_and_revokes_with_primary() {
        let enclave = SecureEnclave::new();
        assert!(enclave.load_degraded(5).is_none());
        enclave.store(5, template(10));
        let fallback = template(11);
        enclave.store_degraded(5, fallback.clone());
        assert_eq!(enclave.load_degraded(5), Some(fallback));
        // Storage accounts for both slots.
        assert_eq!(enclave.storage_bytes(), 2 * (16 * 4 + 8));
        // Revocation removes the fallback along with the primary.
        assert!(enclave.revoke(5).is_some());
        assert!(enclave.load_degraded(5).is_none());
        assert_eq!(enclave.storage_bytes(), 0);
        // The degraded store/load events are tagged in the trail: the
        // initial miss, the store, the hit, and the post-revoke miss.
        let tagged = enclave
            .audit_events_for(5)
            .iter()
            .filter(|e| e.reason == Some("degraded"))
            .count();
        assert_eq!(tagged, 4);
    }

    #[test]
    fn storage_accounts_all_templates() {
        let enclave = SecureEnclave::new();
        enclave.store(1, template(6));
        enclave.store(2, template(7));
        assert_eq!(enclave.storage_bytes(), 2 * (16 * 4 + 8));
    }

    #[test]
    fn enclave_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SecureEnclave>();
    }
}
