//! Statistical-feature extraction — the baseline the paper rejects (§V.A).
//!
//! Six common statistics per axis (mean, median, variance, standard
//! deviation, upper quartile, lower quartile) over the six axes give a
//! 36-value *statistical feature sample* (SFS). The paper shows SFSes of
//! different users are near-indistinguishable and top out below 65 %
//! classification accuracy, motivating the deep extractor; our Fig. 7
//! experiment reruns that comparison.

use mandipass_dsp::stats;
use mandipass_dsp::SignalArray;

/// Number of statistics computed per axis.
pub const STATS_PER_AXIS: usize = 6;

/// Computes the six §V.A statistics of one signal segment, in the paper's
/// listing order: mean, median, variance, standard deviation, upper
/// quartile, lower quartile.
pub fn axis_statistics(segment: &[f64]) -> [f64; STATS_PER_AXIS] {
    [
        stats::mean(segment),
        stats::median(segment),
        stats::variance(segment),
        stats::std_dev(segment),
        stats::upper_quartile(segment),
        stats::lower_quartile(segment),
    ]
}

/// Computes the full statistical feature sample of a signal array:
/// `axis_count × 6` values, axis-major.
pub fn statistical_feature_sample(array: &SignalArray) -> Vec<f64> {
    let mut out = Vec::with_capacity(array.axis_count() * STATS_PER_AXIS);
    for axis in array.iter() {
        out.extend_from_slice(&axis_statistics(axis));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_stats_per_axis() {
        let seg: Vec<f64> = (0..60)
            .map(|i| (i as f64 * 0.2).sin() * 0.5 + 0.5)
            .collect();
        let s = axis_statistics(&seg);
        assert_eq!(s.len(), 6);
        // std² == variance.
        assert!((s[3] * s[3] - s[2]).abs() < 1e-12);
        // Quartile ordering.
        assert!(s[5] <= s[1] && s[1] <= s[4]);
    }

    #[test]
    fn sfs_has_thirty_six_values_for_six_axes() {
        let rows = vec![vec![0.1, 0.5, 0.9, 0.3]; 6];
        let arr = SignalArray::new(rows).unwrap();
        assert_eq!(statistical_feature_sample(&arr).len(), 36);
    }

    #[test]
    fn constant_axis_has_zero_spread() {
        let arr = SignalArray::new(vec![vec![0.5; 10]]).unwrap();
        let sfs = statistical_feature_sample(&arr);
        assert_eq!(sfs[0], 0.5); // mean
        assert_eq!(sfs[2], 0.0); // variance
        assert_eq!(sfs[3], 0.0); // std
    }

    #[test]
    fn normalised_inputs_give_similar_sfs_across_users() {
        // The paper's core observation: after min-max normalisation, the
        // statistics of different oscillatory segments are close. Two
        // different sinusoid mixes land near the same SFS.
        let a: Vec<f64> = (0..60)
            .map(|i| ((i as f64 * 0.9).sin() + 1.0) / 2.0)
            .collect();
        let b: Vec<f64> = (0..60)
            .map(|i| ((i as f64 * 1.3).sin() + 1.0) / 2.0)
            .collect();
        let sa = axis_statistics(&a);
        let sb = axis_statistics(&b);
        for (x, y) in sa.iter().zip(&sb) {
            assert!((x - y).abs() < 0.25, "stat differs too much: {x} vs {y}");
        }
    }
}
