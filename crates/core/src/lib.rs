//! **MandiPass**: secure and usable user authentication via earphone IMU —
//! a full reproduction of the ICDCS 2021 paper.
//!
//! MandiPass authenticates a user from the vibration of their mandible
//! (jaw bone), captured by the IMU inside an earphone while the user hums
//! a short "EMM". This crate implements the complete pipeline:
//!
//! 1. **Signal preprocessing** ([`preprocess`], paper §IV): vibration-start
//!    detection, MAD outlier repair, 20 Hz Butterworth high-pass,
//!    min-max normalisation, multi-axis concatenation into a `(6, n)`
//!    signal array.
//! 2. **MandiblePrint generation** ([`gradient_array`], [`extractor`],
//!    §V): per-axis gradients sign-split into positive/negative direction
//!    planes, then a two-branch CNN (3 × [Conv 3×3 stride 1×2 → BatchNorm
//!    → ReLU] per branch → flatten → concat → FC → Sigmoid) producing a
//!    512-dimensional biometric vector.
//! 3. **Security enhancement** ([`template`], §VI): multiplication by a
//!    user-revocable Gaussian matrix yields a *cancelable* template,
//!    stored in a simulated secure enclave ([`enclave`]).
//! 4. **Similarity calculation** ([`similarity`], §III): cosine distance;
//!    a probe is accepted when its distance to the stored template falls
//!    below the operating threshold.
//!
//! [`authenticator`] ties the phases into the registration/verification
//! API, [`train`] implements the verification-service-provider training
//! procedure (§V.C), [`features`] the statistical-feature baseline the
//! paper rejects (§V.A), and [`attack`] the four §VI attack models.
//!
//! # Example
//!
//! ```no_run
//! use mandipass::prelude::*;
//! use mandipass_imu_sim::{Condition, Population, Recorder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let population = Population::generate(8, 1);
//! let recorder = Recorder::default();
//!
//! // The verification service provider trains the extractor on hired
//! // people (here: users 1..8); user 0 never appears in training.
//! let trainer = VspTrainer::new(TrainingConfig::fast_demo());
//! let extractor = trainer.train(&population.users()[1..], &recorder)?;
//!
//! // Registration: user 0 enrols with a few probes and a fresh matrix.
//! let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());
//! let matrix = GaussianMatrix::generate(7, mandipass.embedding_dim());
//! let enrolment: Vec<_> =
//!     (0..4).map(|s| recorder.record(&population.users()[0], Condition::Normal, s)).collect();
//! mandipass.enroll(0, &enrolment, &matrix)?;
//!
//! // Verification: a fresh probe from the genuine user.
//! let probe = recorder.record(&population.users()[0], Condition::Normal, 99);
//! let outcome = mandipass.verify(0, &probe, &matrix)?;
//! println!("accepted: {} (distance {:.3})", outcome.accepted, outcome.distance);
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod authenticator;
pub mod config;
pub mod enclave;
pub mod error;
pub mod extractor;
pub mod features;
pub mod gradient_array;
pub mod preprocess;
pub mod quality;
pub mod similarity;
pub mod template;
pub mod train;

pub use error::MandiPassError;

/// Convenient glob import of the main API types.
pub mod prelude {
    pub use crate::authenticator::{MandiPass, PolicyDecision, VerifyOutcome, VerifyPolicy};
    pub use crate::config::PipelineConfig;
    pub use crate::enclave::{AccessCounts, AuditEvent, AuditKind, SecureEnclave};
    pub use crate::extractor::{BiometricExtractor, ExtractorConfig};
    pub use crate::gradient_array::GradientArray;
    pub use crate::quality::{QualityConfig, QualityReport, RejectReason};
    pub use crate::template::{CancelableTemplate, GaussianMatrix, MandiblePrint};
    pub use crate::train::{TrainingConfig, VspTrainer};
    pub use crate::MandiPassError;
}
