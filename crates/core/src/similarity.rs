//! Cosine-distance similarity calculation (§III).
//!
//! The paper's Fig. 10(b) numbers (mean 0.4884 between *same-user*
//! MandiblePrints, 0.7032 between *different-user* prints, threshold
//! 0.5485) only cohere when the "similarity" is read as a **distance**:
//! genuine pairs score lower than impostor pairs and a probe is accepted
//! when its score falls *below* the threshold. This module therefore
//! exposes `cosine_distance = 1 − cosine_similarity` and the accept rule
//! `distance < threshold`.

/// Cosine similarity between two equal-length vectors; `0` when either
/// vector is all-zero.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Cosine distance `1 − cosine_similarity`, in `[0, 2]`.
///
/// Lower means more similar; the verifier accepts when the distance is
/// below the operating threshold.
///
/// ```
/// use mandipass::similarity::cosine_distance;
/// let a = [1.0f32, 0.0];
/// assert_eq!(cosine_distance(&a, &a), 0.0);
/// assert_eq!(cosine_distance(&a, &[0.0, 1.0]), 1.0);
/// assert_eq!(cosine_distance(&a, &[-1.0, 0.0]), 2.0);
/// ```
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// The verification decision: accept when `distance < threshold`.
pub fn accepts(distance: f64, threshold: f64) -> bool {
    distance < threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = [0.3f32, 0.7, 0.1];
        assert!(cosine_distance(&v, &v).abs() < 1e-12);
    }

    #[test]
    fn scaling_does_not_change_distance() {
        let a = [0.2f32, 0.5, 0.9];
        let b: Vec<f32> = a.iter().map(|x| x * 3.0).collect();
        assert!(cosine_distance(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_vectors_have_unit_distance() {
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_have_distance_two() {
        assert!((cosine_distance(&[1.0, 2.0], &[-1.0, -2.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_maximally_distant() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn accept_rule_is_strictly_below() {
        assert!(accepts(0.54, 0.5485));
        assert!(!accepts(0.5485, 0.5485));
        assert!(!accepts(0.56, 0.5485));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = cosine_distance(&[1.0], &[1.0, 2.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn distance_is_in_range(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            let d = cosine_distance(&a, &b);
            prop_assert!((-1e-6..=2.0 + 1e-6).contains(&d));
        }

        #[test]
        fn distance_is_symmetric(
            a in proptest::collection::vec(-10.0f32..10.0, 8),
            b in proptest::collection::vec(-10.0f32..10.0, 8),
        ) {
            prop_assert!((cosine_distance(&a, &b) - cosine_distance(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn self_distance_is_zero(a in proptest::collection::vec(0.01f32..10.0, 8)) {
            prop_assert!(cosine_distance(&a, &a).abs() < 1e-6);
        }
    }
}
