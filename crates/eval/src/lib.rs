//! Evaluation harness for the MandiPass reproduction.
//!
//! Implements the paper's §VII metrics — FRR (Eq. 9), FAR (Eq. 10), EER,
//! and VSR (Eq. 11) — over genuine/impostor score pairs, plus the
//! experiment bookkeeping that renders paper-vs-measured tables for every
//! figure and table in the evaluation section.

pub mod experiment;
pub mod metrics;
pub mod pairs;
pub mod split;

pub use experiment::{ExperimentRecord, ReportTable};
pub use metrics::{eer, far_at, frr_at, roc_sweep, vsr_at, EerPoint, RocPoint};
pub use pairs::{genuine_pairs, impostor_pairs, ScoreSet};
