//! Genuine/impostor pair enumeration (Eqs. 9 and 10).
//!
//! The paper's FRR sums over all within-user pairs of signal arrays and
//! its FAR over all cross-user pairs. [`ScoreSet`] holds the resulting
//! distance populations; the builders here enumerate exactly those pairs
//! over per-user embedding lists.

use mandipass::similarity::cosine_distance;

/// The genuine and impostor distance populations of one evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreSet {
    /// Within-user pair distances.
    pub genuine: Vec<f64>,
    /// Cross-user pair distances.
    pub impostor: Vec<f64>,
}

impl ScoreSet {
    /// Builds both populations from per-user embedding lists:
    /// `embeddings[u]` holds all vectors of user `u`.
    pub fn from_embeddings(embeddings: &[Vec<Vec<f32>>]) -> Self {
        let _span = mandipass_telemetry::span("score_set");
        let set = ScoreSet {
            genuine: genuine_pairs(embeddings),
            impostor: impostor_pairs(embeddings),
        };
        mandipass_telemetry::counter!("eval.genuine_pairs").add(set.genuine.len() as u64);
        mandipass_telemetry::counter!("eval.impostor_pairs").add(set.impostor.len() as u64);
        set
    }

    /// Mean of the genuine distances (`NaN` if empty).
    pub fn genuine_mean(&self) -> f64 {
        mean(&self.genuine)
    }

    /// Mean of the impostor distances (`NaN` if empty).
    pub fn impostor_mean(&self) -> f64 {
        mean(&self.impostor)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// All within-user pair distances (Eq. 9's enumeration:
/// `j < k` over each user's arrays).
pub fn genuine_pairs(embeddings: &[Vec<Vec<f32>>]) -> Vec<f64> {
    let mut out = Vec::new();
    for user in embeddings {
        for j in 0..user.len() {
            for k in j + 1..user.len() {
                out.push(cosine_distance(&user[j], &user[k]));
            }
        }
    }
    out
}

/// All cross-user pair distances (Eq. 10's enumeration: every array of
/// user `i` against every array of every user `k > i`).
pub fn impostor_pairs(embeddings: &[Vec<Vec<f32>>]) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..embeddings.len() {
        for k in i + 1..embeddings.len() {
            for a in &embeddings[i] {
                for b in &embeddings[k] {
                    out.push(cosine_distance(a, b));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_embeddings() -> Vec<Vec<Vec<f32>>> {
        vec![
            vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.8, 0.2]], // user 0
            vec![vec![0.0, 1.0], vec![0.1, 0.9]],                 // user 1
        ]
    }

    #[test]
    fn pair_counts_match_combinatorics() {
        let e = toy_embeddings();
        // Genuine: C(3,2) + C(2,2) = 3 + 1 = 4.
        assert_eq!(genuine_pairs(&e).len(), 4);
        // Impostor: 3 × 2 = 6.
        assert_eq!(impostor_pairs(&e).len(), 6);
    }

    #[test]
    fn genuine_distances_are_smaller_for_clustered_users() {
        let s = ScoreSet::from_embeddings(&toy_embeddings());
        assert!(s.genuine_mean() < s.impostor_mean());
    }

    #[test]
    fn single_array_users_produce_no_genuine_pairs() {
        let e = vec![vec![vec![1.0f32, 0.0]], vec![vec![0.0f32, 1.0]]];
        assert!(genuine_pairs(&e).is_empty());
        assert_eq!(impostor_pairs(&e).len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        let s = ScoreSet::from_embeddings(&[]);
        assert!(s.genuine.is_empty() && s.impostor.is_empty());
        assert!(s.genuine_mean().is_nan());
    }

    #[test]
    fn three_users_cover_all_cross_pairs() {
        let e = vec![
            vec![vec![1.0f32, 0.0]; 2],
            vec![vec![0.0f32, 1.0]; 2],
            vec![vec![0.5f32, 0.5]; 2],
        ];
        // 3 user pairs × 2 × 2 arrays = 12.
        assert_eq!(impostor_pairs(&e).len(), 12);
    }
}
