//! FAR, FRR, EER and VSR over cosine-distance score sets.
//!
//! Scores are **distances** (lower = more similar), matching the paper's
//! operating convention: a probe is accepted when its distance falls
//! below the threshold. Consequently:
//!
//! * FRR(t) = fraction of *genuine* pair distances `≥ t` (Eq. 9's
//!   indicator, with `sim < t` read as "not similar enough"),
//! * FAR(t) = fraction of *impostor* pair distances `< t` (Eq. 10),
//! * EER = the rate where the two curves cross (found by sweeping `t`),
//! * VSR = 1 − FRR (Eq. 11).

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold on the distance.
    pub threshold: f64,
    /// False accept rate at this threshold.
    pub far: f64,
    /// False reject rate at this threshold.
    pub frr: f64,
}

/// The equal-error operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EerPoint {
    /// Threshold where FAR ≈ FRR.
    pub threshold: f64,
    /// The equal error rate, `(FAR + FRR) / 2` at that threshold.
    pub eer: f64,
}

/// False reject rate at threshold `t`: genuine distances `≥ t` are
/// rejected. Empty input yields 0.
pub fn frr_at(genuine: &[f64], t: f64) -> f64 {
    if genuine.is_empty() {
        return 0.0;
    }
    genuine.iter().filter(|&&d| d >= t).count() as f64 / genuine.len() as f64
}

/// False accept rate at threshold `t`: impostor distances `< t` are
/// accepted. Empty input yields 0.
pub fn far_at(impostor: &[f64], t: f64) -> f64 {
    if impostor.is_empty() {
        return 0.0;
    }
    impostor.iter().filter(|&&d| d < t).count() as f64 / impostor.len() as f64
}

/// Verification success rate at threshold `t` (Eq. 11: `1 − FRR`).
pub fn vsr_at(genuine: &[f64], t: f64) -> f64 {
    1.0 - frr_at(genuine, t)
}

/// Sweeps `steps` evenly spaced thresholds across the observed score
/// range and reports FAR/FRR at each — the Fig. 10(b) curve.
pub fn roc_sweep(genuine: &[f64], impostor: &[f64], steps: usize) -> Vec<RocPoint> {
    let all_min = genuine
        .iter()
        .chain(impostor)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let all_max = genuine
        .iter()
        .chain(impostor)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    if !all_min.is_finite() || steps == 0 {
        return Vec::new();
    }
    let span = (all_max - all_min).max(1e-12);
    (0..=steps)
        .map(|i| {
            let t = all_min + span * i as f64 / steps as f64;
            RocPoint {
                threshold: t,
                far: far_at(impostor, t),
                frr: frr_at(genuine, t),
            }
        })
        .collect()
}

/// Finds the equal-error operating point by exact sweep over the merged
/// score set (every distinct score is a candidate threshold, so the
/// crossing is located to sample precision).
///
/// Returns `None` when either score set is empty.
pub fn eer(genuine: &[f64], impostor: &[f64]) -> Option<EerPoint> {
    let _span = mandipass_telemetry::span("eer_sweep");
    if genuine.is_empty() || impostor.is_empty() {
        return None;
    }
    let mut candidates: Vec<f64> = genuine.iter().chain(impostor).cloned().collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
    candidates.dedup();
    // Thresholds between adjacent scores too, to catch the crossing.
    let mut best = EerPoint {
        threshold: candidates[0],
        eer: 1.0,
    };
    let mut best_gap = f64::INFINITY;
    let mut eval = |t: f64| {
        let far = far_at(impostor, t);
        let frr = frr_at(genuine, t);
        let gap = (far - frr).abs();
        if gap < best_gap || (gap == best_gap && (far + frr) / 2.0 < best.eer) {
            best_gap = gap;
            best = EerPoint {
                threshold: t,
                eer: (far + frr) / 2.0,
            };
        }
    };
    for i in 0..candidates.len() {
        eval(candidates[i]);
        if i + 1 < candidates.len() {
            eval((candidates[i] + candidates[i + 1]) / 2.0);
        }
    }
    // Just past the maximum, so FRR can reach 0.
    eval(candidates[candidates.len() - 1] + 1e-9);
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frr_counts_rejected_genuine() {
        let genuine = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(frr_at(&genuine, 0.25), 0.5);
        assert_eq!(frr_at(&genuine, 1.0), 0.0);
        assert_eq!(frr_at(&genuine, 0.05), 1.0);
    }

    #[test]
    fn far_counts_accepted_impostors() {
        let impostor = [0.6, 0.7, 0.8];
        assert_eq!(far_at(&impostor, 0.65), 1.0 / 3.0);
        assert_eq!(far_at(&impostor, 0.5), 0.0);
        assert_eq!(far_at(&impostor, 0.9), 1.0);
    }

    #[test]
    fn vsr_is_one_minus_frr() {
        let genuine = [0.1, 0.9];
        assert_eq!(vsr_at(&genuine, 0.5), 0.5);
    }

    #[test]
    fn perfectly_separated_scores_have_zero_eer() {
        let genuine = [0.1, 0.2, 0.3];
        let impostor = [0.7, 0.8, 0.9];
        let point = eer(&genuine, &impostor).unwrap();
        assert!(point.eer < 1e-12, "eer {}", point.eer);
        assert!(point.threshold > 0.3 && point.threshold <= 0.7);
    }

    #[test]
    fn fully_overlapping_scores_have_half_eer() {
        let scores = [0.4, 0.5, 0.6];
        let point = eer(&scores, &scores).unwrap();
        assert!((point.eer - 0.5).abs() < 0.2, "eer {}", point.eer);
    }

    #[test]
    fn partial_overlap_has_intermediate_eer() {
        let genuine = [0.1, 0.2, 0.3, 0.55];
        let impostor = [0.45, 0.6, 0.7, 0.8];
        let point = eer(&genuine, &impostor).unwrap();
        assert!(point.eer > 0.0 && point.eer < 0.5, "eer {}", point.eer);
    }

    #[test]
    fn empty_sets_yield_none() {
        assert!(eer(&[], &[0.5]).is_none());
        assert!(eer(&[0.5], &[]).is_none());
    }

    #[test]
    fn roc_sweep_is_monotone() {
        let genuine = [0.1, 0.2, 0.3, 0.4, 0.5];
        let impostor = [0.5, 0.6, 0.7, 0.8, 0.9];
        let sweep = roc_sweep(&genuine, &impostor, 50);
        assert_eq!(sweep.len(), 51);
        for w in sweep.windows(2) {
            assert!(w[1].far >= w[0].far, "FAR must rise with threshold");
            assert!(w[1].frr <= w[0].frr, "FRR must fall with threshold");
        }
    }

    #[test]
    fn roc_endpoints_cover_full_range() {
        let genuine = [0.2, 0.3];
        let impostor = [0.6, 0.7];
        let sweep = roc_sweep(&genuine, &impostor, 10);
        let first = sweep.first().unwrap();
        let last = sweep.last().unwrap();
        assert_eq!(first.far, 0.0);
        assert_eq!(first.frr, 1.0);
        // The sweep tops out at the maximum observed score; acceptance is
        // strict (`< t`), so the maximal impostor score is still rejected
        // there, and all genuine scores are accepted.
        assert_eq!(last.far, 0.5);
        assert_eq!(last.frr, 0.0);
    }

    #[test]
    fn eer_threshold_behaves_like_paper_numbers() {
        // Genuine distances clustered near 0.49, impostor near 0.70 —
        // the paper's Fig. 10(b) regime. The EER threshold must land
        // between the clusters.
        let genuine: Vec<f64> = (0..100).map(|i| 0.40 + 0.002 * i as f64).collect(); // 0.40..0.60
        let impostor: Vec<f64> = (0..100).map(|i| 0.55 + 0.003 * i as f64).collect(); // 0.55..0.85
        let point = eer(&genuine, &impostor).unwrap();
        assert!(
            (0.5..0.62).contains(&point.threshold),
            "threshold {}",
            point.threshold
        );
        assert!(point.eer < 0.3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn far_frr_are_rates(
            genuine in proptest::collection::vec(0.0f64..2.0, 1..100),
            impostor in proptest::collection::vec(0.0f64..2.0, 1..100),
            t in 0.0f64..2.0,
        ) {
            let far = far_at(&impostor, t);
            let frr = frr_at(&genuine, t);
            prop_assert!((0.0..=1.0).contains(&far));
            prop_assert!((0.0..=1.0).contains(&frr));
        }

        #[test]
        fn frr_is_monotone_in_threshold(
            genuine in proptest::collection::vec(0.0f64..2.0, 1..100),
            t1 in 0.0f64..2.0,
            t2 in 0.0f64..2.0,
        ) {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(frr_at(&genuine, lo) >= frr_at(&genuine, hi));
        }

        #[test]
        fn eer_is_bracketed(
            genuine in proptest::collection::vec(0.0f64..1.0, 2..50),
            impostor in proptest::collection::vec(0.0f64..1.0, 2..50),
        ) {
            let point = eer(&genuine, &impostor).unwrap();
            prop_assert!((0.0..=1.0).contains(&point.eer));
            // At the EER threshold FAR and FRR are close (within one
            // sample's granularity of each set).
            let far = far_at(&impostor, point.threshold);
            let frr = frr_at(&genuine, point.threshold);
            let granularity = 1.0 / genuine.len() as f64 + 1.0 / impostor.len() as f64;
            prop_assert!((far - frr).abs() <= granularity + 1e-9);
        }
    }
}
