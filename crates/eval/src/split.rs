//! Evaluation splits: which users are "hired people" (training) and which
//! play the deployed-user role (extraction only).
//!
//! The paper trains the extractor on 33 volunteers and extracts the 34th
//! volunteer's MandiblePrints, rotating through all volunteers. Full
//! leave-one-out would multiply training cost by the cohort size, so the
//! harness also offers a grouped variant: hold out `k` users at once and
//! rotate over groups, which preserves the "extractor never saw the
//! deployed user" property at a fraction of the cost.

/// One evaluation fold: indices of training users and held-out users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Users the extractor is trained on.
    pub train: Vec<usize>,
    /// Users whose embeddings are extracted for scoring.
    pub held_out: Vec<usize>,
}

/// Classic leave-one-user-out: `n` folds, each holding out one user.
pub fn leave_one_out(n: usize) -> Vec<Fold> {
    (0..n)
        .map(|held| Fold {
            train: (0..n).filter(|&i| i != held).collect(),
            held_out: vec![held],
        })
        .collect()
}

/// Grouped hold-out: users are partitioned into `ceil(n / group)` groups;
/// each fold trains on everything outside the group and extracts the
/// group. `group = 1` degenerates to [`leave_one_out`].
///
/// # Panics
///
/// Panics when `group` is zero.
pub fn grouped_holdout(n: usize, group: usize) -> Vec<Fold> {
    assert!(group > 0, "group size must be positive");
    let mut folds = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + group).min(n);
        folds.push(Fold {
            train: (0..n).filter(|&i| i < start || i >= end).collect(),
            held_out: (start..end).collect(),
        });
        start = end;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leave_one_out_has_n_folds() {
        let folds = leave_one_out(5);
        assert_eq!(folds.len(), 5);
        for (i, f) in folds.iter().enumerate() {
            assert_eq!(f.held_out, vec![i]);
            assert_eq!(f.train.len(), 4);
            assert!(!f.train.contains(&i));
        }
    }

    #[test]
    fn grouped_holdout_partitions_users() {
        let folds = grouped_holdout(10, 3);
        assert_eq!(folds.len(), 4); // 3+3+3+1
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.held_out.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for f in &folds {
            for h in &f.held_out {
                assert!(!f.train.contains(h), "held-out user in training set");
            }
            assert_eq!(f.train.len() + f.held_out.len(), 10);
        }
    }

    #[test]
    fn group_of_one_is_leave_one_out() {
        assert_eq!(grouped_holdout(4, 1), leave_one_out(4));
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_panics() {
        let _ = grouped_holdout(4, 0);
    }

    #[test]
    fn empty_cohort_has_no_folds() {
        assert!(leave_one_out(0).is_empty());
        assert!(grouped_holdout(0, 3).is_empty());
    }
}
