//! Experiment bookkeeping: paper-vs-measured records and rendered tables.
//!
//! Every experiment binary emits [`ExperimentRecord`]s — the artifact id
//! (figure/table number), the paper's published value, and our measured
//! value — and renders them as a [`ReportTable`]. `run_all` aggregates the
//! JSON forms into `EXPERIMENTS.md`.

use mandipass_util::json::{self, Value};

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Artifact id, e.g. `"Fig 10(b)"` or `"Table I"`.
    pub artifact: String,
    /// What is being measured, e.g. `"EER (%)"`.
    pub quantity: String,
    /// The paper's published value, as text (testbed numbers we do not
    /// expect to match exactly).
    pub paper: String,
    /// Our measured value, as text.
    pub measured: String,
    /// Whether the reproduction preserves the paper's qualitative claim
    /// (ordering, pass/fail, trend).
    pub shape_holds: bool,
    /// Free-form notes (scale reductions, caveats).
    pub note: String,
}

impl ExperimentRecord {
    /// Creates a record with an empty note.
    pub fn new(
        artifact: impl Into<String>,
        quantity: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        shape_holds: bool,
    ) -> Self {
        ExperimentRecord {
            artifact: artifact.into(),
            quantity: quantity.into(),
            paper: paper.into(),
            measured: measured.into(),
            shape_holds,
            note: String::new(),
        }
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }
}

/// A renderable collection of experiment records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportTable {
    /// Table heading.
    pub title: String,
    /// The rows.
    pub records: Vec<ExperimentRecord>,
}

impl ReportTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        ReportTable {
            title: title.into(),
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: ExperimentRecord) {
        self.records.push(record);
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| Artifact | Quantity | Paper | Measured | Shape holds | Note |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for r in &self.records {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.artifact,
                r.quantity,
                r.paper,
                r.measured,
                if r.shape_holds { "yes" } else { "NO" },
                r.note
            ));
        }
        out
    }

    /// Renders a plain-text console table.
    pub fn to_console(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for r in &self.records {
            out.push_str(&format!(
                "  {:<12} {:<34} paper: {:<22} measured: {:<22} [{}]{}\n",
                r.artifact,
                r.quantity,
                r.paper,
                r.measured,
                if r.shape_holds {
                    "ok"
                } else {
                    "SHAPE MISMATCH"
                },
                if r.note.is_empty() {
                    String::new()
                } else {
                    format!("  ({})", r.note)
                }
            ));
        }
        out
    }

    /// Serialises to a JSON line for `run_all` aggregation.
    pub fn to_json(&self) -> String {
        let records = self
            .records
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("artifact".to_string(), Value::String(r.artifact.clone())),
                    ("quantity".to_string(), Value::String(r.quantity.clone())),
                    ("paper".to_string(), Value::String(r.paper.clone())),
                    ("measured".to_string(), Value::String(r.measured.clone())),
                    ("shape_holds".to_string(), Value::Bool(r.shape_holds)),
                    ("note".to_string(), Value::String(r.note.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("title".to_string(), Value::String(self.title.clone())),
            ("records".to_string(), Value::Array(records)),
        ])
        .to_json()
    }

    /// Parses a table back from [`ReportTable::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a parse-error message on malformed input.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        let str_field = |v: &Value, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let mut table = ReportTable::new(str_field(&doc, "title")?);
        let records = doc
            .get("records")
            .and_then(Value::as_array)
            .ok_or("missing array field `records`")?;
        for r in records {
            table.push(ExperimentRecord {
                artifact: str_field(r, "artifact")?,
                quantity: str_field(r, "quantity")?,
                paper: str_field(r, "paper")?,
                measured: str_field(r, "measured")?,
                shape_holds: r
                    .get("shape_holds")
                    .and_then(Value::as_bool)
                    .ok_or("missing boolean field `shape_holds`")?,
                note: str_field(r, "note")?,
            });
        }
        Ok(table)
    }

    /// Whether every record's shape holds.
    pub fn all_shapes_hold(&self) -> bool {
        self.records.iter().all(|r| r.shape_holds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ReportTable {
        let mut t = ReportTable::new("Fig 10(b): FAR/FRR");
        t.push(
            ExperimentRecord::new("Fig 10(b)", "EER (%)", "1.28", "1.9", true)
                .with_note("reduced scale"),
        );
        t.push(ExperimentRecord::new(
            "Fig 10(b)",
            "threshold",
            "0.5485",
            "0.52",
            true,
        ));
        t
    }

    #[test]
    fn markdown_contains_all_rows() {
        let md = sample_table().to_markdown();
        assert!(md.contains("| Fig 10(b) | EER (%) | 1.28 | 1.9 | yes | reduced scale |"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn console_render_is_nonempty() {
        let text = sample_table().to_console();
        assert!(text.contains("Fig 10(b)"));
        assert!(text.contains("[ok]"));
    }

    #[test]
    fn json_round_trip() {
        let t = sample_table();
        let back = ReportTable::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ReportTable::from_json("not json").is_err());
    }

    #[test]
    fn shape_mismatch_is_flagged() {
        let mut t = sample_table();
        assert!(t.all_shapes_hold());
        t.push(ExperimentRecord::new("Fig 12", "VSR", ">99%", "80%", false));
        assert!(!t.all_shapes_hold());
        assert!(t.to_console().contains("SHAPE MISMATCH"));
        assert!(t.to_markdown().contains("| NO |"));
    }
}
