//! Attack laboratory: the four §VI attack models against one deployment.
//!
//! ```text
//! cargo run --release --example attack_lab
//! ```
//!
//! * zero-effort — the thief does not know a hum is required,
//! * vibration-aware — the thief hums with their own mandible,
//! * impersonation — the thief mimics the victim's voicing manner,
//! * replay — the thief exhibits a stolen cancelable template.

use mandipass::attack::{impersonation_probe, vibration_aware_probe, zero_effort_probe};
use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::generate(24, 77);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig::example_demo());
    let extractor = trainer.train(&population.users()[2..], &recorder)?;
    let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());

    let victim = &population.users()[0];
    let attacker = &population.users()[1];
    let matrix = GaussianMatrix::generate(5, mandipass.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(victim, Condition::Normal, 700 + s))
        .collect();
    mandipass.enroll(victim.id, &enrolment, &matrix)?;

    // Calibrate a demo threshold.
    let mut genuine = Vec::new();
    for s in 0..6 {
        let probe = recorder.record(victim, Condition::Normal, 800 + s);
        genuine.push(mandipass.verify(victim.id, &probe, &matrix)?.distance);
    }
    let g_max = genuine.iter().cloned().fold(f64::MIN, f64::max);
    mandipass.config_mut().threshold = g_max * 1.3;
    println!(
        "threshold {:.3} (worst genuine distance {g_max:.3})\n",
        mandipass.config().threshold
    );

    println!("== zero-effort attack ==");
    let mut detected = 0;
    for s in 0..10 {
        let probe = zero_effort_probe(attacker, &recorder, s);
        if mandipass.verify(victim.id, &probe, &matrix).is_ok() {
            detected += 1;
        }
    }
    println!("{detected}/10 silent probes even produced a detectable vibration (expect 0)\n");

    println!("== vibration-aware attack ==");
    let mut accepted = 0;
    for s in 0..10 {
        let probe = vibration_aware_probe(attacker, &recorder, 900 + s);
        if mandipass.verify(victim.id, &probe, &matrix)?.accepted {
            accepted += 1;
        }
    }
    println!("{accepted}/10 own-hum probes accepted (expect ~0)\n");

    println!("== impersonation attack ==");
    let mut accepted = 0;
    let mut best = f64::MAX;
    for s in 0..10 {
        let probe = impersonation_probe(attacker, victim, &recorder, 1000 + s);
        let outcome = mandipass.verify(victim.id, &probe, &matrix)?;
        best = best.min(outcome.distance);
        if outcome.accepted {
            accepted += 1;
        }
    }
    println!("{accepted}/10 mimicry probes accepted; best distance {best:.3} (mimicking the voice does not mimic the mandible)\n");

    println!("== replay attack ==");
    let stolen = mandipass.enclave().load(victim.id)?;
    mandipass.revoke(victim.id);
    let fresh = GaussianMatrix::generate(6, mandipass.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(victim, Condition::Normal, 1100 + s))
        .collect();
    mandipass.enroll(victim.id, &enrolment, &fresh)?;
    let outcome = mandipass.verify_cancelable(victim.id, &stolen)?;
    println!(
        "stolen template after revocation: distance {:.3} → {}",
        outcome.distance,
        if outcome.accepted {
            "ACCEPTED (!)"
        } else {
            "rejected"
        }
    );
    Ok(())
}
