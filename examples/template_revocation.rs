//! Replay attack and template revocation (§VI): the cancelable-template
//! lifecycle end to end.
//!
//! ```text
//! cargo run --release --example template_revocation
//! ```
//!
//! 1. The user enrols under Gaussian matrix G₁.
//! 2. An attacker steals the cancelable template from the enclave.
//! 3. Replaying the stolen template verifies — until the user revokes.
//! 4. The user switches to G₂ and re-enrols; the stolen template now
//!    scores far above the threshold, while the genuine user still
//!    verifies.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::generate(20, 13);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig::example_demo());
    let extractor = trainer.train(&population.users()[1..], &recorder)?;
    let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());

    let user = &population.users()[0];
    let matrix_one = GaussianMatrix::generate(0xaaaa, mandipass.embedding_dim());

    println!(
        "== enrolment under matrix G1 (seed {:#x}) ==",
        matrix_one.seed()
    );
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 400 + s))
        .collect();
    mandipass.enroll(user.id, &enrolment, &matrix_one)?;

    println!("\n== the attacker steals the template from the enclave ==");
    let stolen = mandipass.enclave().load(user.id)?;
    println!(
        "stolen template: {} bytes, matrix seed {:#x}",
        stolen.storage_bytes(),
        stolen.matrix_seed()
    );

    let replay = mandipass.verify_cancelable(user.id, &stolen)?;
    println!(
        "replay before revocation: distance {:.4} → {}",
        replay.distance,
        if replay.accepted {
            "ACCEPTED (stolen templates replay until revoked)"
        } else {
            "rejected"
        }
    );

    println!("\n== the user revokes and re-enrols under matrix G2 ==");
    mandipass.revoke(user.id);
    let matrix_two = GaussianMatrix::generate(0xbbbb, mandipass.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 500 + s))
        .collect();
    mandipass.enroll(user.id, &enrolment, &matrix_two)?;

    let replay = mandipass.verify_cancelable(user.id, &stolen)?;
    println!(
        "replay after revocation:  distance {:.4} → {}",
        replay.distance,
        if replay.accepted {
            "ACCEPTED (!)"
        } else {
            "rejected — the stolen template is dead"
        }
    );

    // The genuine user is unaffected: same hum, new matrix.
    let probe = recorder.record(user, Condition::Normal, 600);
    let genuine = mandipass.verify(user.id, &probe, &matrix_two)?;
    println!(
        "genuine user after revocation: distance {:.4} → {}",
        genuine.distance,
        if genuine.distance < replay.distance {
            "closer than the replay, as designed"
        } else {
            "(!)"
        }
    );
    Ok(())
}
