//! Quickstart: train the extractor, enrol a user, verify a probe.
//!
//! ```text
//! cargo run --release --example quickstart
//! MANDIPASS_TELEMETRY=json cargo run --release --example quickstart   # + span tree & latency JSON
//! ```
//!
//! Mirrors the paper's deployment story: the verification service
//! provider (VSP) trains the biometric extractor on *hired people*; the
//! deployed user never contributes training data — they simply hum "EMM"
//! to enrol and to verify.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic cohort: user 0 plays the deployed user; users 1.. are
    // the VSP's hired people.
    let population = Population::generate(24, 42);
    let recorder = Recorder::default();

    println!("== VSP training (offline, once per product) ==");
    let trainer = VspTrainer::new(TrainingConfig::example_demo());
    let extractor = trainer.train(&population.users()[1..], &recorder)?;
    println!("extractor trained on {} hired people", population.len() - 1);

    // Deployment: assemble the system, enrol user 0 with a fresh
    // revocable Gaussian matrix.
    let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());
    let user = &population.users()[0];
    let matrix = GaussianMatrix::generate(7, mandipass.embedding_dim());

    println!("\n== Registration (the user hums 'EMM' a few times) ==");
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 100 + s))
        .collect();
    mandipass.enroll(user.id, &enrolment, &matrix)?;
    println!(
        "cancelable template sealed in the enclave ({} bytes)",
        mandipass.enclave().storage_bytes()
    );

    println!("\n== Verification ==");
    // Calibrate a working threshold for this tiny demo from a few scores.
    let mut genuine = Vec::new();
    let mut impostor = Vec::new();
    for s in 0..6 {
        let probe = recorder.record(user, Condition::Normal, 200 + s);
        genuine.push(mandipass.verify(user.id, &probe, &matrix)?.distance);
        let other = &population.users()[1];
        let probe = recorder.record(other, Condition::Normal, 300 + s);
        impostor.push(mandipass.verify(user.id, &probe, &matrix)?.distance);
    }
    let g_max = genuine.iter().cloned().fold(f64::MIN, f64::max);
    let i_min = impostor.iter().cloned().fold(f64::MAX, f64::min);
    mandipass.config_mut().threshold = (g_max + i_min) / 2.0;
    println!("genuine distances:  {genuine:.3?}");
    println!("impostor distances: {impostor:.3?}");
    println!("calibrated threshold: {:.3}", mandipass.config().threshold);

    let probe = recorder.record(user, Condition::Normal, 999);
    let outcome = mandipass.verify(user.id, &probe, &matrix)?;
    println!(
        "\nfresh genuine probe: distance {:.3} → {}",
        outcome.distance,
        if outcome.accepted {
            "ACCEPTED"
        } else {
            "rejected"
        }
    );

    let attacker = &population.users()[2];
    let probe = recorder.record(attacker, Condition::Normal, 998);
    let outcome = mandipass.verify(user.id, &probe, &matrix)?;
    println!(
        "attacker probe:      distance {:.3} → {}",
        outcome.distance,
        if outcome.accepted {
            "ACCEPTED (!)"
        } else {
            "rejected"
        }
    );

    // With MANDIPASS_TELEMETRY=text|json the verifications above already
    // streamed span lines to stderr; additionally capture one more
    // verify and print its span tree + per-stage latency breakdown.
    if mandipass_telemetry::enabled() {
        let probe = recorder.record(user, Condition::Normal, 997);
        let (outcome, tree) =
            mandipass_telemetry::capture(|| mandipass.verify(user.id, &probe, &matrix));
        outcome?;
        println!("\n== Telemetry: one verify, per-stage latency ==");
        println!(
            "{}",
            mandipass_telemetry::report::latency_report(&tree).to_json()
        );
        let counts = mandipass.enclave().access_counts();
        println!(
            "enclave audit: {} events retained ({} stores, {} loads)",
            mandipass.enclave().audit_len(),
            counts.stores,
            counts.loads
        );
    }
    Ok(())
}
