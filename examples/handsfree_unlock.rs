//! Hands-free unlocking scenario from the paper's introduction: the
//! earphone serves as a trusted wearable that authenticates its wearer to
//! a paired device while the user is busy — driving, walking, running,
//! eating — without touching anything.
//!
//! ```text
//! cargo run --release --example handsfree_unlock
//! ```
//!
//! A single enrolment is verified under every daily-life condition the
//! paper evaluates (Figs. 12–14): lollipop, water, walking, running,
//! rotated earphone, high/low tone, and the left ear.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::generate(24, 7);
    let recorder = Recorder::default();

    let trainer = VspTrainer::new(TrainingConfig::example_demo());
    let extractor = trainer.train(&population.users()[1..], &recorder)?;
    let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());

    let driver = &population.users()[0];
    let matrix = GaussianMatrix::generate(99, mandipass.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(driver, Condition::Normal, 10 + s))
        .collect();
    mandipass.enroll(driver.id, &enrolment, &matrix)?;

    // Calibrate a demo threshold from a handful of genuine/impostor probes.
    let mut genuine = Vec::new();
    let mut impostor = Vec::new();
    for s in 0..6 {
        let probe = recorder.record(driver, Condition::Normal, 50 + s);
        genuine.push(mandipass.verify(driver.id, &probe, &matrix)?.distance);
        let probe = recorder.record(&population.users()[1], Condition::Normal, 70 + s);
        impostor.push(mandipass.verify(driver.id, &probe, &matrix)?.distance);
    }
    let g_max = genuine.iter().cloned().fold(f64::MIN, f64::max);
    let i_min = impostor.iter().cloned().fold(f64::MAX, f64::min);
    mandipass.config_mut().threshold = (g_max + i_min) / 2.0;
    println!(
        "calibrated threshold {:.3} (genuine ≤ {g_max:.3}, impostor ≥ {i_min:.3})\n",
        mandipass.config().threshold
    );

    let scenarios: [(&str, Condition); 9] = [
        ("at a red light (static)", Condition::Normal),
        ("lollipop in mouth", Condition::Lollipop),
        ("sip of water", Condition::Water),
        ("walking to the car", Condition::Walk),
        ("morning run", Condition::Run),
        ("earphone rotated 90°", Condition::Orientation(90)),
        ("tired, low hum", Condition::ToneLow),
        ("excited, high hum", Condition::ToneHigh),
        ("earphone in the left ear", Condition::LeftEar),
    ];

    println!("== hands-free verification across daily life ==");
    for (label, condition) in scenarios {
        let mut accepted = 0;
        let attempts = 5;
        let mut mean = 0.0;
        for s in 0..attempts {
            let probe = recorder.record(driver, condition, 1000 + s);
            let outcome = mandipass.verify(driver.id, &probe, &matrix)?;
            mean += outcome.distance / f64::from(attempts as u32);
            if outcome.accepted {
                accepted += 1;
            }
        }
        println!("{label:<28} {accepted}/{attempts} unlocked (mean distance {mean:.3})");
    }
    Ok(())
}
