//! Live monitoring: watch a deployed MandiPass authenticator drift from
//! Healthy to Alarm as its earphone hardware degrades.
//!
//! ```text
//! cargo run --release --example monitor
//! MANDIPASS_TELEMETRY_DETERMINISTIC=1 cargo run --release --example monitor   # bit-stable output
//! MANDIPASS_MONITOR_ADDR=127.0.0.1:9646 cargo run --release --example monitor # + live endpoints
//! ```
//!
//! The demo enrols a small cohort, calibrates the score-drift baseline
//! on clean genuine traffic, then streams increasingly faulty probes
//! (gain drift + sample dropout, an ageing flaky earphone) through the
//! verification policy while printing the evolving health verdict.
//! With `MANDIPASS_MONITOR_ADDR` set, the same state is live on
//! `GET /metrics` (Prometheus text), `/health` and `/flight` (JSON)
//! for the duration of the run.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, FaultProfile, FaultyRecorder, Population, Recorder};
use mandipass_telemetry::{monitor, render_prometheus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // User 0 plays the deployed user; users 1.. are the VSP's hired
    // training cohort (they never meet the deployed device).
    let population = Population::generate(24, 42);
    let recorder = Recorder::default();

    println!("== VSP training (offline, once per product) ==");
    let trainer = VspTrainer::new(TrainingConfig::example_demo());
    let extractor = trainer.train(&population.users()[1..], &recorder)?;

    // This example observes the process-wide monitor — the same one the
    // default MandiPass construction feeds and serve_from_env exposes.
    let monitor = monitor();
    let _server = mandipass_telemetry::serve_from_env();
    if let Ok(addr) = std::env::var(mandipass_telemetry::MONITOR_ADDR_ENV) {
        println!("monitor endpoints live on http://{addr}/metrics /health /flight");
    }

    let mut mandipass = MandiPass::new(extractor, PipelineConfig::default());
    let user = &population.users()[0];
    let matrix = GaussianMatrix::generate(7, mandipass.embedding_dim());

    println!("\n== Registration ==");
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 100 + s))
        .collect();
    mandipass.enroll(user.id, &enrolment, &matrix)?;

    // Calibration: a working threshold for the tiny demo, and a frozen
    // drift baseline taken from live genuine probe distances (enrolment
    // froze the prints-vs-template distribution, which sits tighter to
    // the template than any fresh probe — re-freezing on real traffic
    // is the operational post-enrolment step).
    let mut genuine = Vec::new();
    let mut impostor = Vec::new();
    for s in 0..20 {
        let probe = recorder.record(user, Condition::Normal, 200 + s);
        genuine.push(mandipass.verify(user.id, &probe, &matrix)?.distance);
        let other = &population.users()[1];
        let probe = recorder.record(other, Condition::Normal, 300 + s);
        impostor.push(mandipass.verify(user.id, &probe, &matrix)?.distance);
    }
    let g_max = genuine.iter().cloned().fold(f64::MIN, f64::max);
    let i_min = impostor.iter().cloned().fold(f64::MAX, f64::min);
    mandipass.config_mut().threshold = (g_max + i_min) / 2.0;
    monitor.extend_baseline(&genuine);
    monitor.freeze_baseline();
    monitor.reset_windows();
    println!(
        "calibrated threshold {:.3}; drift baseline frozen on {} genuine distances",
        mandipass.config().threshold,
        genuine.len()
    );

    // Phase 1 — a healthy device: clean genuine traffic.
    println!("\n== Phase 1: clean traffic ==");
    let policy = VerifyPolicy::default();
    for s in 0..12 {
        let probe = recorder.record(user, Condition::Normal, 400 + s);
        let _ = mandipass.verify_with_policy(user.id, &[probe], &matrix, &policy);
    }
    let health = monitor.health();
    println!(
        "health: {} ({} decisions, PSI {:.3})",
        health.status.label(),
        health.decisions,
        monitor.psi()
    );

    // Phase 2 — the earphone ages: gain drift and sample dropout grow
    // together; watch the verdict flip as the ramp steepens.
    println!("\n== Phase 2: hardware degradation ramp ==");
    for &intensity in &[0.25, 0.5, 0.75, 1.0] {
        let faulty =
            FaultyRecorder::new(recorder.clone(), FaultProfile::degradation_ramp(intensity));
        for t in 0..4u64 {
            let probes: Vec<_> = (0..policy.max_attempts as u64)
                .map(|a| {
                    faulty.record(
                        user,
                        Condition::Normal,
                        (500 + ((intensity * 100.0) as u64) + (t << 8)) ^ (a << 48),
                    )
                })
                .collect();
            let _ = mandipass.verify_with_policy(user.id, &probes, &matrix, &policy);
        }
        let health = monitor.health();
        let reasons: Vec<&str> = health.reasons().iter().map(|r| r.signal.label()).collect();
        println!(
            "intensity {intensity:.2}: health {} (PSI {:.3}{}{})",
            health.status.label(),
            monitor.psi(),
            if reasons.is_empty() { "" } else { "; " },
            reasons.join(", ")
        );
    }

    // The flight recorder kept the failed verifications for post-mortem
    // (the /flight endpoint serves the same ring).
    let flights = monitor.flights();
    println!("\n== Flight recorder ==");
    println!("{} flights retained; most recent:", flights.len());
    if let Some(last) = flights.last() {
        println!("{}", last.to_json().to_json());
    }

    println!("\n== Prometheus exposition (/metrics) ==");
    print!("{}", render_prometheus(&monitor.snapshot()));
    Ok(())
}
